//! Property-based key-lifecycle tests.
//!
//! Two families:
//!
//! 1. **Rotation transparency** — for ANY handshake seed, rotation
//!    period, and message mix, a rotation-enabled world delivers
//!    plaintexts bit-identical to a rotation-disabled one; composed
//!    with chaos + ARQ it must deliver exactly, or surface a typed
//!    error — never panic, deadlock, or double-decrypt.
//! 2. **Misuse hardening** — at the record layer, nonce reuse across
//!    epochs, epoch splices, stale-epoch replays, and downgrades to
//!    the prefix-free cluster-key format all fail authentication or a
//!    typed gate for ANY generated payload/epoch combination.

use empi_aead::profile::CryptoLibrary;
use empi_aead::{AesGcm, NONCE_LEN};
use empi_core::{
    Error, FaultRates, KeyError, KeyPlaneConfig, PipelineConfig, SecureComm, SecurityConfig,
};
use empi_keys::{derive_group_key, open_record, seal_record, split_epoch, EpochWindow};
use empi_mpi::{Src, TagSel, World};
use empi_netsim::{NetModel, VDur};
use proptest::prelude::*;

fn keys_cfg(seed: u64, rotate_us: Option<u64>, drain: u64) -> SecurityConfig {
    let mut kp = KeyPlaneConfig::new(seed).with_drain(drain);
    if let Some(us) = rotate_us {
        kp = kp.with_rotation(VDur::from_micros(us));
    }
    SecurityConfig::new(CryptoLibrary::BoringSsl).with_key_plane(kp)
}

fn payload(case: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (i as u64).wrapping_mul(167).wrapping_add(case) as u8)
        .collect()
}

/// The vendored proptest has no array strategies; build the fixed-size
/// key/nonce inputs from integer pairs.
fn any_master() -> impl Strategy<Value = [u8; 32]> {
    (any::<u128>(), any::<u128>()).prop_map(|(a, b)| {
        let mut m = [0u8; 32];
        m[..16].copy_from_slice(&a.to_le_bytes());
        m[16..].copy_from_slice(&b.to_le_bytes());
        m
    })
}

fn any_nonce() -> impl Strategy<Value = [u8; NONCE_LEN]> {
    (any::<u64>(), any::<u32>()).prop_map(|(a, b)| {
        let mut n = [0u8; NONCE_LEN];
        n[..8].copy_from_slice(&a.to_le_bytes());
        n[8..].copy_from_slice(&b.to_le_bytes());
        n
    })
}

proptest! {
    // Each case spins up whole simulated worlds; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rotation_is_bit_exact_for_any_seed(
        hs_seed in any::<u64>(),
        rotate_us in 50u64..300,
        pipelined in any::<bool>(),
        len in 1usize..16_000,
        msgs in 2u32..7,
    ) {
        // Transparency holds whenever the drain window covers the
        // in-flight depth (epochs a record can age between seal and
        // open). A generous half-width keeps every generated mix of
        // message sizes and rotation periods inside the window; an
        // undersized window degrades to typed StaleEpoch errors, which
        // the chaos property below covers.
        let run = |rotate: Option<u64>| {
            let w = World::flat(NetModel::ethernet_10g(), 2);
            w.try_run(move |c| {
                let mut cfg = keys_cfg(hs_seed, rotate, 64);
                if pipelined {
                    cfg = cfg.with_pipeline(
                        PipelineConfig::enabled().with_chunk_size(1 << 13).with_workers(2),
                    );
                }
                let sc = SecureComm::new(c, cfg).unwrap();
                let mut got = Vec::new();
                for i in 0..msgs {
                    let want = payload(u64::from(i), len);
                    if c.rank() == 0 {
                        sc.send(&want, 1, i);
                        got.push(want);
                    } else {
                        let (_, data) = sc.recv(Src::Is(0), TagSel::Is(i)).unwrap();
                        got.push(data);
                    }
                }
                got
            })
            .expect("rotation must never deadlock a clean world")
        };
        let rotated = run(Some(rotate_us));
        let fixed = run(None);
        // Bit-exact delivery on every rank, rotation on or off.
        prop_assert_eq!(&rotated.results, &fixed.results);
        for (i, want) in fixed.results[1].iter().enumerate() {
            prop_assert_eq!(want, &payload(i as u64, len));
        }
    }

    #[test]
    fn rotation_under_chaos_delivers_exactly_or_types_out(
        hs_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        rotate_us in 30u64..150,
        rate in 0.0f64..0.15,
        arq in any::<bool>(),
        len in 1usize..25_000,
    ) {
        let w = World::flat(NetModel::ethernet_10g(), 2);
        let out = w.try_run(move |c| {
            let mut cfg = keys_cfg(hs_seed, Some(rotate_us), 2)
                .with_faults(fault_seed, FaultRates::uniform(rate))
                .with_pipeline(
                    PipelineConfig::enabled().with_chunk_size(1 << 13).with_workers(2),
                );
            if arq {
                cfg = cfg.with_retransmit(3, VDur::from_micros(150));
            }
            let sc = SecureComm::new(c, cfg).unwrap();
            let mut outs = Vec::new();
            for i in 0..6u32 {
                let want = payload(u64::from(i), len);
                if c.rank() == 0 {
                    sc.send(&want, 1, i);
                    outs.push(Ok(want));
                } else {
                    outs.push(sc.recv(Src::Is(0), TagSel::Is(i)).map(|(_, d)| d));
                }
            }
            sc.pump(sc.recovery_window());
            outs
        });
        let out = out.expect("rotation + chaos must never deadlock");
        for (i, res) in out.results[1].iter().enumerate() {
            let want = payload(i as u64, len);
            match res {
                // Bit-exact or typed — a wrong-epoch open can never
                // succeed (distinct keys), so equality proves no
                // double-decryption under a stale cipher either.
                Ok(data) => prop_assert_eq!(data, &want, "message {} silently corrupted", i),
                Err(
                    Error::Crypto(_)
                    | Error::Pipeline(_)
                    | Error::LengthMismatch { .. }
                    | Error::DeliveryFailed { .. }
                    | Error::Timeout { .. }
                    | Error::Key(_),
                ) => {}
                // No crash plan and no detector in this world.
                Err(Error::RankFailed { .. }) => {
                    prop_assert!(false, "rank failure without a crash plan")
                }
            }
        }
    }
}

proptest! {
    // Record-layer misuse properties are cheap; run more cases.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn nonce_reuse_across_epochs_never_cross_opens(
        master in any_master(),
        nonce in any_nonce(),
        e1 in 0u64..1 << 20,
        delta in 1u64..1 << 20,
        pt in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        // The same nonce under two different epochs is two different
        // keys: ciphertexts differ and neither record opens under the
        // other epoch's cipher (so nonce reuse across rolls leaks
        // nothing and splicing ciphertexts between epochs fails).
        let e2 = e1 + delta;
        let c1 = AesGcm::new(&derive_group_key(&master, e1)).unwrap();
        let c2 = AesGcm::new(&derive_group_key(&master, e2)).unwrap();
        let w1 = seal_record(&c1, e1, nonce, &pt);
        let w2 = seal_record(&c2, e2, nonce, &pt);
        prop_assert_ne!(&w1[8 + NONCE_LEN..], &w2[8 + NONCE_LEN..]);
        prop_assert!(open_record(&c2, &w1).is_err());
        prop_assert!(open_record(&c1, &w2).is_err());
        prop_assert_eq!(open_record(&c1, &w1).unwrap(), pt);
    }

    #[test]
    fn epoch_splice_always_fails_auth(
        master in any_master(),
        nonce in any_nonce(),
        epoch in 0u64..1 << 30,
        forged in 0u64..1 << 30,
        pt in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        prop_assume!(epoch != forged);
        let c = AesGcm::new(&derive_group_key(&master, epoch)).unwrap();
        let mut wire = seal_record(&c, epoch, nonce, &pt);
        wire[..8].copy_from_slice(&forged.to_be_bytes());
        // The prefix is the AAD: rewriting it breaks the tag even
        // under the correct epoch's key — and under the forged
        // epoch's key the record was never sealed at all.
        prop_assert!(open_record(&c, &wire).is_err());
        let cf = AesGcm::new(&derive_group_key(&master, forged)).unwrap();
        prop_assert!(open_record(&cf, &wire).is_err());
    }

    #[test]
    fn window_rejects_stale_and_future_everywhere(
        drain in 0u64..8,
        local in any::<u64>(),
        wire in any::<u64>(),
    ) {
        let w = EpochWindow::new(drain);
        let inside = wire <= local.saturating_add(drain)
            && wire.saturating_add(drain) >= local;
        match w.accept(wire, local) {
            Ok(()) => prop_assert!(inside, "out-of-window epoch accepted"),
            Err(KeyError::StaleEpoch { .. }) => prop_assert!(wire < local && !inside),
            Err(KeyError::FutureEpoch { .. }) => prop_assert!(wire > local && !inside),
            Err(e) => panic!("unexpected window error: {e}"),
        }
    }

    #[test]
    fn downgrade_strip_always_fails(
        master in any_master(),
        nonce in any_nonce(),
        epoch in 0u64..1 << 30,
        pt in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        let c = AesGcm::new(&derive_group_key(&master, epoch)).unwrap();
        let wire = seal_record(&c, epoch, nonce, &pt);
        // Stripping the epoch prefix yields a structurally legacy
        // record whose tag was bound to the prefix: AAD-free opens
        // fail under the epoch key and under the raw master alike.
        let stripped = &wire[8..];
        let n: &[u8; NONCE_LEN] = stripped[..NONCE_LEN].try_into().unwrap();
        prop_assert!(c.open(n, b"", &stripped[NONCE_LEN..]).is_err());
        let raw = AesGcm::new(&master).unwrap();
        prop_assert!(raw.open(n, b"", &stripped[NONCE_LEN..]).is_err());
        // And a runt can't even be split: typed downgrade.
        prop_assert_eq!(
            split_epoch(&wire[..8 + NONCE_LEN + 16 - 1]).unwrap_err(),
            KeyError::Downgrade
        );
    }
}
