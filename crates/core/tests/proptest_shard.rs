//! Shard-count determinism: for ANY seed, traffic mix, chaos setting,
//! and crash plan, a sharded world (`S > 1`) must be **bit-identical**
//! to the serial one (`S = 1`) — same virtual times, same wire bytes,
//! same delivered plaintexts, same deaths, same metrics snapshot, even
//! the same scheduler yield count. Sharding may only change wall-clock
//! time (DESIGN.md §15).

use empi_aead::profile::CryptoLibrary;
use empi_core::{FaultRates, SecureComm, SecurityConfig};
use empi_mpi::{Src, TagSel, World};
use empi_netsim::{CrashKind, CrashPlan, NetModel, VDur, VTime};
use proptest::prelude::*;

/// Everything a run can observably produce, in comparable form. Any
/// drift between shard counts shows up as a field-level mismatch.
#[derive(Debug, PartialEq)]
struct Digest {
    /// Per-rank outcome: `None` for a dead rank, else the round's
    /// delivered plaintexts hashed, with errors rendered as text.
    results: Vec<Option<Vec<String>>>,
    deaths: Vec<Option<(VTime, CrashKind)>>,
    end_time: VTime,
    yields: u64,
    messages: u64,
    wire_bytes: u64,
    local_messages: u64,
    /// Debug render of the merged metrics snapshot (histograms, flight
    /// recorder, ledgers — all virtual-time-valued under calibrated
    /// timing).
    metrics: String,
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The traffic mix: ranks 0..6 run a ring of secure sends (sizes and
/// payloads derived from the seed), rank 6 broadcasts, rank 7 computes
/// locally — and is the one a crash plan kills mid-loop.
fn run_once(shards: usize, seed: u64, chaos: bool, crash: bool) -> Digest {
    const N: usize = 8;
    const RING: usize = 6;
    let mut world = World::flat(NetModel::ethernet_10g(), N)
        .with_metrics(true)
        .with_shards(shards);
    if crash {
        world = world.crash_plan(CrashPlan::new().crash_at(7, VTime(200_000)));
    }
    let out = world
        .try_run_ft(move |c| {
            let mut cfg = SecurityConfig::new(CryptoLibrary::BoringSsl);
            if chaos {
                cfg = cfg
                    .with_faults(
                        seed,
                        FaultRates {
                            bit_flip: 0.1,
                            truncate: 0.1,
                            drop: 0.1,
                            duplicate: 0.1,
                            jitter: 0.2,
                            jitter_max_ns: 5_000,
                            degraded_workers: 0.0,
                            worker_slowdown: 1,
                        },
                    )
                    .with_retransmit(2, VDur::from_micros(150));
            }
            let me = c.rank();
            if me >= RING {
                // Local compute lane; rank 7 dies here under a crash
                // plan (its clock crosses the death time mid-loop).
                for i in 0..40u64 {
                    c.compute_with(VDur::from_micros(7 + (seed ^ i) % 13), || {
                        std::hint::black_box(i.wrapping_mul(0x9E3779B97F4A7C15));
                    });
                }
                return vec![format!("compute-done@{}", c.now().as_nanos())];
            }
            let sc = SecureComm::new(c, cfg).unwrap();
            let mut log = Vec::new();
            for round in 0..3u64 {
                let len = 1 + ((seed >> (8 * round)) as usize ^ (me * 977)) % 9_000;
                let payload: Vec<u8> = (0..len)
                    .map(|i| (i as u64 ^ seed ^ round.wrapping_mul(me as u64 + 1)) as u8)
                    .collect();
                let dst = (me + 1) % RING;
                let src = (me + RING - 1) % RING;
                let tag = 40 + round as u32;
                let sreq = sc.isend(&payload, dst, tag);
                let got = sc
                    .recv(Src::Is(src), TagSel::Is(tag))
                    .map(|(_, d)| format!("ok:{:016x}", fnv(&d)))
                    .unwrap_or_else(|e| format!("err:{e}"));
                let sent = sc
                    .wait(sreq)
                    .map(|_| "sent".to_string())
                    .unwrap_or_else(|e| format!("senderr:{e}"));
                log.push(format!("r{round} t{} {got} {sent}", c.now().as_nanos()));
            }
            sc.pump(sc.recovery_window());
            log.push(format!("end@{}", c.now().as_nanos()));
            log
        })
        .expect("shard proptest worlds must never deadlock");
    Digest {
        results: out.results,
        deaths: out.deaths,
        end_time: out.end_time,
        yields: out.yields,
        messages: out.fabric.messages,
        wire_bytes: out.fabric.bytes,
        local_messages: out.fabric.local_messages,
        metrics: format!("{:?}", out.metrics),
    }
}

proptest! {
    // Each case runs four whole worlds; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The determinism guard: S ∈ {1, 2, 4, 7} produce identical
    /// digests for arbitrary seed × chaos × crash-plan combinations.
    #[test]
    fn shard_count_is_unobservable(
        seed in any::<u64>(),
        chaos in any::<bool>(),
        crash in any::<bool>(),
    ) {
        let base = run_once(1, seed, chaos, crash);
        for s in [2usize, 4, 7] {
            let got = run_once(s, seed, chaos, crash);
            prop_assert_eq!(
                &base, &got,
                "shards={} diverged from serial (seed={}, chaos={}, crash={})",
                s, seed, chaos, crash
            );
        }
    }
}

/// Deterministic (non-proptest) spot check so `cargo test` failures
/// reproduce without a proptest regression file: a known seed with
/// chaos and a crash plan, across all shard counts.
#[test]
fn known_seed_digests_match() {
    let base = run_once(1, 0xC0FFEE, true, true);
    assert!(base.deaths[7].is_some(), "crash plan must execute");
    for s in [2usize, 4, 7] {
        assert_eq!(base, run_once(s, 0xC0FFEE, true, true), "shards={s}");
    }
}
