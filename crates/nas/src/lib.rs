//! # empi-nas — NAS Parallel Benchmark kernels for the encrypted-MPI study
//!
//! Re-implementations of the seven NAS kernels the paper runs (CG, FT,
//! MG, LU, BT, SP, IS) with their *communication structure* kept
//! faithful — that structure is what determines encryption overhead —
//! at reduced "mini-class" problem sizes (DESIGN.md §2):
//!
//! | kernel | communication reproduced |
//! |---|---|
//! | CG | allreduce dot products + allgather of the iterate |
//! | FT | 3-D FFT with alltoall slab transpose |
//! | MG | multigrid V-cycle halo exchange across levels |
//! | LU | SSOR pipelined wavefront point-to-point |
//! | BT/SP | ADI line solves pipelined across the rank grid |
//! | IS | histogram allreduce + alltoallv key exchange |
//!
//! Each kernel runs real arithmetic on real data and self-verifies; all
//! communication goes through [`CommLayer`], which is implemented both
//! by plain MPI ([`PlainLayer`]) and by the encrypted library
//! ([`SecureLayer`]) — the paper's baseline-vs-encrypted comparison.
//!
//! Compute time is charged through a calibrated per-kernel cost model
//! ([`ComputeModel`]) so that mini-class baseline timings land at the
//! paper's Table IV/VIII values while communication runs through the
//! full simulated stack.

// The kernels are transliterated stencil/solver code: index loops
// over multiple same-shaped grids and a cached sparse-matrix type.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

pub mod adi;
pub mod cg;
pub mod ft;
pub mod is;
pub mod layer;
pub mod lu;
pub mod mg;

pub use layer::{CommLayer, PlainLayer, SecureLayer};

use empi_netsim::VDur;

/// Problem-size class. `S` is a smoke-test size; `MiniC` is scaled so a
/// 64-rank run has the paper's class-C communication-to-computation
/// character at simulation-friendly cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Tiny smoke-test size (tests).
    S,
    /// The reproduction size used for Tables IV and VIII.
    MiniC,
}

/// The seven kernels of the study, in the paper's table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Conjugate gradient.
    CG,
    /// 3-D fast Fourier transform.
    FT,
    /// Multigrid.
    MG,
    /// Lower-upper Gauss–Seidel (SSOR).
    LU,
    /// Block-tridiagonal ADI.
    BT,
    /// Scalar-pentadiagonal ADI.
    SP,
    /// Integer sort.
    IS,
}

impl Kernel {
    /// All kernels in Table IV order (CG FT MG LU BT SP IS).
    pub const ALL: [Kernel; 7] = [
        Kernel::CG,
        Kernel::FT,
        Kernel::MG,
        Kernel::LU,
        Kernel::BT,
        Kernel::SP,
        Kernel::IS,
    ];

    /// Table heading.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::CG => "CG",
            Kernel::FT => "FT",
            Kernel::MG => "MG",
            Kernel::LU => "LU",
            Kernel::BT => "BT",
            Kernel::SP => "SP",
            Kernel::IS => "IS",
        }
    }
}

/// Outcome of one kernel run on one rank.
#[derive(Debug, Clone)]
pub struct KernelReport {
    /// Did the built-in verification pass?
    pub verified: bool,
    /// Kernel-specific verification value (same on every rank).
    pub checksum: f64,
    /// Abstract work units executed (drives the compute model).
    pub work_units: u64,
}

/// Calibrated compute-cost model: virtual nanoseconds per abstract work
/// unit, per kernel. Tuned so that the *unencrypted* mini-class run at
/// 64 ranks / 8 nodes reproduces the baseline seconds of Tables IV/VIII
/// (the absolute scale is a free parameter of the reproduction; the
/// encryption overheads are what the study measures).
#[derive(Debug, Clone, Copy)]
pub struct ComputeModel {
    /// Virtual nanoseconds charged per work unit.
    pub ns_per_unit: f64,
}

impl ComputeModel {
    /// The calibrated model for a kernel (see `empi-bench` TAB-4/TAB-8).
    ///
    /// The `EMPI_NAS_NS_SCALE` environment variable multiplies every
    /// constant — used only by the calibration helper to solve for these
    /// values; production runs leave it unset.
    pub fn calibrated(kernel: Kernel) -> Self {
        let ns_per_unit = match kernel {
            Kernel::CG => 2.4,
            Kernel::FT => 7.5,
            Kernel::MG => 0.3,
            Kernel::LU => 19.0,
            Kernel::BT => 21.0,
            Kernel::SP => 62.0,
            Kernel::IS => 3.4,
        };
        let scale = std::env::var("EMPI_NAS_NS_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(1.0);
        ComputeModel {
            ns_per_unit: ns_per_unit * scale,
        }
    }

    /// Charge `units` of work on `layer`'s virtual clock.
    pub fn charge(&self, layer: &impl CommLayer, units: u64) {
        layer.compute(VDur((units as f64 * self.ns_per_unit) as u64));
    }

    /// Charge `units` of work while running `f`, the arithmetic those
    /// units model. Under a sharded world the closure executes
    /// concurrently with other ranks (see
    /// [`CommLayer::compute_with`]); serially it is `f()` + charge.
    pub fn charge_with(&self, layer: &impl CommLayer, units: u64, f: &mut dyn FnMut()) {
        layer.compute_with(VDur((units as f64 * self.ns_per_unit) as u64), f);
    }
}

/// Deterministic pseudo-random stream (NAS-style LCG, 2^46 modulus) so
/// every rank generates the same workload without communication.
#[derive(Debug, Clone)]
pub struct NasRandom {
    seed: u64,
}

impl NasRandom {
    /// NAS benchmarks use a = 5^13; the canonical seed is 314159265.
    pub fn new(seed: u64) -> Self {
        NasRandom {
            seed: (seed | 1) & ((1 << 46) - 1),
        }
    }

    /// Next double in (0, 1).
    pub fn next_f64(&mut self) -> f64 {
        const A: u64 = 1_220_703_125; // 5^13
        const MASK: u64 = (1 << 46) - 1;
        self.seed = self.seed.wrapping_mul(A) & MASK;
        self.seed as f64 / (1u64 << 46) as f64
    }

    /// Next integer in `[0, bound)`.
    pub fn next_u32(&mut self, bound: u32) -> u32 {
        (self.next_f64() * bound as f64) as u32 % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nas_random_is_deterministic_and_in_range() {
        let mut a = NasRandom::new(314159265);
        let mut b = NasRandom::new(314159265);
        for _ in 0..1000 {
            let x = a.next_f64();
            assert_eq!(x, b.next_f64());
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn nas_random_different_seeds_differ() {
        let mut a = NasRandom::new(1);
        let mut b = NasRandom::new(5);
        let xa: Vec<f64> = (0..10).map(|_| a.next_f64()).collect();
        let xb: Vec<f64> = (0..10).map(|_| b.next_f64()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn kernel_names() {
        assert_eq!(
            Kernel::ALL.map(|k| k.name()),
            ["CG", "FT", "MG", "LU", "BT", "SP", "IS"]
        );
    }
}
