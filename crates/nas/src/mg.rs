//! MG — multigrid V-cycle on a 3-D periodic Poisson problem (the NAS MG
//! kernel's structure).
//!
//! The fine grid is distributed as z-slabs; every smoothing, residual,
//! restriction and prolongation step performs a **halo exchange** of
//! boundary planes with the two z-neighbours (point-to-point, medium
//! messages — MG's signature traffic). Once a level becomes too coarse
//! to partition (fewer than two planes per rank), the grid is
//! **allgathered** and the remaining V-cycle runs replicated, like NAS
//! MG's coarse-level gathering.

use crate::layer::bytes::{f64s, to_f64s};
use crate::{Class, CommLayer, ComputeModel, Kernel, KernelReport};

/// MG parameters.
#[derive(Debug, Clone, Copy)]
pub struct MgParams {
    /// Grid extent (n × n × n, power of two).
    pub n: usize,
    /// V-cycles to run.
    pub cycles: usize,
}

impl MgParams {
    /// Parameters for a class.
    pub fn for_class(class: Class) -> Self {
        match class {
            Class::S => MgParams { n: 16, cycles: 4 },
            Class::MiniC => MgParams { n: 128, cycles: 6 },
        }
    }
}

const OMEGA: f64 = 0.8;
const TAG: u32 = 700;

/// Index into an (nz+2)-plane slab with ghost planes at z=0 and z=nz+1.
#[inline]
fn gi(n: usize, z: usize, y: usize, x: usize) -> usize {
    (z * n + y) * n + x
}

/// A distributed slab at one level.
struct Slab {
    /// Grid extent at this level.
    n: usize,
    /// Local planes (without ghosts).
    nzl: usize,
    /// Values, (nzl+2)·n·n with ghost planes.
    u: Vec<f64>,
}

impl Slab {
    fn zeros(n: usize, nzl: usize) -> Slab {
        Slab {
            n,
            nzl,
            u: vec![0.0; (nzl + 2) * n * n],
        }
    }
}

/// Exchange ghost planes with the periodic z-neighbours.
fn halo(layer: &impl CommLayer, s: &mut Slab) {
    let n = s.n;
    let plane = n * n;
    let p = layer.size();
    if p == 1 {
        // Periodic wrap within the local slab.
        let (top, bottom) = (s.nzl, 1);
        let top_plane = s.u[gi(n, top, 0, 0)..gi(n, top, 0, 0) + plane].to_vec();
        let bot_plane = s.u[gi(n, bottom, 0, 0)..gi(n, bottom, 0, 0) + plane].to_vec();
        s.u[0..plane].copy_from_slice(&top_plane);
        let hi = gi(n, s.nzl + 1, 0, 0);
        s.u[hi..hi + plane].copy_from_slice(&bot_plane);
        return;
    }
    let me = layer.rank();
    let up = (me + 1) % p;
    let down = (me + p - 1) % p;
    // Send my top plane up, receive my below-ghost from down.
    let top = s.u[gi(n, s.nzl, 0, 0)..gi(n, s.nzl, 0, 0) + plane].to_vec();
    let from_down = layer.sendrecv(f64s(&top), up, down, TAG);
    s.u[0..plane].copy_from_slice(&to_f64s(&from_down));
    // Send my bottom plane down, receive my above-ghost from up.
    let bottom = s.u[gi(n, 1, 0, 0)..gi(n, 1, 0, 0) + plane].to_vec();
    let from_up = layer.sendrecv(f64s(&bottom), down, up, TAG + 1);
    let hi = gi(n, s.nzl + 1, 0, 0);
    s.u[hi..hi + plane].copy_from_slice(&to_f64s(&from_up));
}

/// One damped-Jacobi sweep: `u += ω (v − A u)/6` with `A = −∇²`
/// (7-point, periodic x/y in-plane, z via ghosts).
fn smooth(layer: &impl CommLayer, u: &mut Slab, v: &Slab, model: &ComputeModel, work: &mut u64) {
    halo(layer, u);
    let n = u.n;
    let mut new = u.u.clone();
    let units = (u.nzl * n * n * 10) as u64;
    model.charge_with(layer, units, &mut || {
        for z in 1..=u.nzl {
            for y in 0..n {
                let (yp, ym) = ((y + 1) % n, (y + n - 1) % n);
                for x in 0..n {
                    let (xp, xm) = ((x + 1) % n, (x + n - 1) % n);
                    let nb = u.u[gi(n, z + 1, y, x)]
                        + u.u[gi(n, z - 1, y, x)]
                        + u.u[gi(n, z, yp, x)]
                        + u.u[gi(n, z, ym, x)]
                        + u.u[gi(n, z, y, xp)]
                        + u.u[gi(n, z, y, xm)];
                    let au = 6.0 * u.u[gi(n, z, y, x)] - nb;
                    let r = v.u[gi(n, z, y, x)] - au;
                    new[gi(n, z, y, x)] = u.u[gi(n, z, y, x)] + OMEGA * r / 6.0;
                }
            }
        }
    });
    u.u = new;
    *work += units;
}

/// Residual `r = v − A u` (interior planes only).
fn residual(
    layer: &impl CommLayer,
    u: &mut Slab,
    v: &Slab,
    model: &ComputeModel,
    work: &mut u64,
) -> Slab {
    halo(layer, u);
    let n = u.n;
    let mut r = Slab::zeros(n, u.nzl);
    let units = (u.nzl * n * n * 9) as u64;
    model.charge_with(layer, units, &mut || {
        for z in 1..=u.nzl {
            for y in 0..n {
                let (yp, ym) = ((y + 1) % n, (y + n - 1) % n);
                for x in 0..n {
                    let (xp, xm) = ((x + 1) % n, (x + n - 1) % n);
                    let nb = u.u[gi(n, z + 1, y, x)]
                        + u.u[gi(n, z - 1, y, x)]
                        + u.u[gi(n, z, yp, x)]
                        + u.u[gi(n, z, ym, x)]
                        + u.u[gi(n, z, y, xp)]
                        + u.u[gi(n, z, y, xm)];
                    r.u[gi(n, z, y, x)] = v.u[gi(n, z, y, x)] - (6.0 * u.u[gi(n, z, y, x)] - nb);
                }
            }
        }
    });
    *work += units;
    r
}

/// Box-average restriction to the next-coarser slab (z halves locally
/// when the fine slab has an even plane count).
fn restrict(fine: &Slab) -> Slab {
    let nf = fine.n;
    let nc = nf / 2;
    let nzl_c = fine.nzl / 2;
    let mut coarse = Slab::zeros(nc, nzl_c);
    for zc in 1..=nzl_c {
        let zf = 2 * zc - 1; // fine planes zf, zf+1
        for yc in 0..nc {
            for xc in 0..nc {
                let mut acc = 0.0;
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            acc += fine.u[gi(nf, zf + dz, 2 * yc + dy, 2 * xc + dx)];
                        }
                    }
                }
                // Scale by 4 = 8 (average) × h²-ratio for A = −∇² with
                // unit spacing at every level… empirically the standard
                // factor for this discretization is ½.
                coarse.u[gi(nc, zc, yc, xc)] = acc * 0.5;
            }
        }
    }
    coarse
}

/// Piecewise-constant prolongation and correction: `u += P e`.
fn prolong_add(u: &mut Slab, e: &Slab) {
    let nf = u.n;
    let nc = e.n;
    for zc in 1..=e.nzl {
        let zf = 2 * zc - 1;
        for yc in 0..nc {
            for xc in 0..nc {
                let val = e.u[gi(nc, zc, yc, xc)];
                for dz in 0..2 {
                    for dy in 0..2 {
                        for dx in 0..2 {
                            u.u[gi(nf, zf + dz, 2 * yc + dy, 2 * xc + dx)] += val;
                        }
                    }
                }
            }
        }
    }
}

/// Distributed V-cycle. Coarsens while each rank keeps ≥2 planes; below
/// that, gathers the grid and recurses replicated (p = 1 semantics via
/// the same code path on a conceptually-serial slab).
fn vcycle(layer: &impl CommLayer, u: &mut Slab, v: &Slab, model: &ComputeModel, work: &mut u64) {
    let n = u.n;
    if n <= 4 {
        for _ in 0..10 {
            smooth(layer, u, v, model, work);
        }
        return;
    }
    for _ in 0..2 {
        smooth(layer, u, v, model, work);
    }
    let mut r = residual(layer, u, v, model, work);

    if u.nzl >= 4 || (layer.size() > 1 && u.nzl >= 2) {
        halo(layer, &mut r);
        let rc = restrict(&r);
        let mut e = Slab::zeros(rc.n, rc.nzl);
        if rc.nzl >= 1 && (rc.nzl >= 2 || layer.size() == 1) {
            vcycle(layer, &mut e, &rc, model, work);
        } else {
            // Too thin to keep distributed: gather and solve replicated.
            let interior: Vec<f64> = (1..=rc.nzl)
                .flat_map(|z| r_interior_plane(&rc, z))
                .collect();
            let all = to_f64s(&layer.allgather(f64s(&interior)));
            let nzc_total = rc.n; // full cube
            let mut full_v = Slab::zeros(rc.n, nzc_total);
            full_v.u[rc.n * rc.n..(nzc_total + 1) * rc.n * rc.n].copy_from_slice(&all);
            let mut full_e = Slab::zeros(rc.n, nzc_total);
            serial_vcycle(&mut full_e, &full_v, layer, model, work);
            // Extract my planes of the correction.
            let z0 = layer.rank() * rc.nzl;
            for z in 1..=rc.nzl {
                let src = gi(rc.n, z0 + z, 0, 0);
                let dst = gi(rc.n, z, 0, 0);
                let plane = rc.n * rc.n;
                e.u[dst..dst + plane].copy_from_slice(&full_e.u[src..src + plane]);
            }
        }
        prolong_add(u, &e);
    }
    for _ in 0..2 {
        smooth(layer, u, v, model, work);
    }
}

fn r_interior_plane(s: &Slab, z: usize) -> Vec<f64> {
    let plane = s.n * s.n;
    s.u[gi(s.n, z, 0, 0)..gi(s.n, z, 0, 0) + plane].to_vec()
}

/// Replicated serial V-cycle: identical on every rank, no communication
/// except the compute charge.
fn serial_vcycle(
    u: &mut Slab,
    v: &Slab,
    layer: &impl CommLayer,
    model: &ComputeModel,
    work: &mut u64,
) {
    // A slab with nzl == n behaves as the full cube under p=1 halo
    // semantics; reuse the distributed code through a tiny shim layer is
    // not possible (layer.size() > 1), so smooth with explicit periodic
    // wrap here.
    let n = u.n;
    let sweeps = if n <= 4 { 10 } else { 4 };
    for _ in 0..sweeps {
        wrap_ghosts(u);
        let mut new = u.u.clone();
        for z in 1..=u.nzl {
            for y in 0..n {
                let (yp, ym) = ((y + 1) % n, (y + n - 1) % n);
                for x in 0..n {
                    let (xp, xm) = ((x + 1) % n, (x + n - 1) % n);
                    let nb = u.u[gi(n, z + 1, y, x)]
                        + u.u[gi(n, z - 1, y, x)]
                        + u.u[gi(n, z, yp, x)]
                        + u.u[gi(n, z, ym, x)]
                        + u.u[gi(n, z, y, xp)]
                        + u.u[gi(n, z, y, xm)];
                    let au = 6.0 * u.u[gi(n, z, y, x)] - nb;
                    new[gi(n, z, y, x)] =
                        u.u[gi(n, z, y, x)] + OMEGA * (v.u[gi(n, z, y, x)] - au) / 6.0;
                }
            }
        }
        u.u = new;
    }
    let units = (sweeps * u.nzl * n * n * 10) as u64;
    model.charge(layer, units);
    *work += units;
    if n > 4 {
        wrap_ghosts(u);
        // residual
        let mut r = Slab::zeros(n, u.nzl);
        for z in 1..=u.nzl {
            for y in 0..n {
                let (yp, ym) = ((y + 1) % n, (y + n - 1) % n);
                for x in 0..n {
                    let (xp, xm) = ((x + 1) % n, (x + n - 1) % n);
                    let nb = u.u[gi(n, z + 1, y, x)]
                        + u.u[gi(n, z - 1, y, x)]
                        + u.u[gi(n, z, yp, x)]
                        + u.u[gi(n, z, ym, x)]
                        + u.u[gi(n, z, y, xp)]
                        + u.u[gi(n, z, y, xm)];
                    r.u[gi(n, z, y, x)] = v.u[gi(n, z, y, x)] - (6.0 * u.u[gi(n, z, y, x)] - nb);
                }
            }
        }
        wrap_ghosts(&mut r);
        let rc = restrict(&r);
        let mut e = Slab::zeros(rc.n, rc.nzl);
        serial_vcycle(&mut e, &rc, layer, model, work);
        prolong_add(u, &e);
        for _ in 0..2 {
            wrap_ghosts(u);
            let mut new = u.u.clone();
            for z in 1..=u.nzl {
                for y in 0..n {
                    let (yp, ym) = ((y + 1) % n, (y + n - 1) % n);
                    for x in 0..n {
                        let (xp, xm) = ((x + 1) % n, (x + n - 1) % n);
                        let nb = u.u[gi(n, z + 1, y, x)]
                            + u.u[gi(n, z - 1, y, x)]
                            + u.u[gi(n, z, yp, x)]
                            + u.u[gi(n, z, ym, x)]
                            + u.u[gi(n, z, y, xp)]
                            + u.u[gi(n, z, y, xm)];
                        let au = 6.0 * u.u[gi(n, z, y, x)] - nb;
                        new[gi(n, z, y, x)] =
                            u.u[gi(n, z, y, x)] + OMEGA * (v.u[gi(n, z, y, x)] - au) / 6.0;
                    }
                }
            }
            u.u = new;
        }
    }
}

fn wrap_ghosts(s: &mut Slab) {
    let n = s.n;
    let plane = n * n;
    let top = s.u[gi(n, s.nzl, 0, 0)..gi(n, s.nzl, 0, 0) + plane].to_vec();
    let bottom = s.u[gi(n, 1, 0, 0)..gi(n, 1, 0, 0) + plane].to_vec();
    s.u[0..plane].copy_from_slice(&top);
    let hi = gi(n, s.nzl + 1, 0, 0);
    s.u[hi..hi + plane].copy_from_slice(&bottom);
}

/// Deterministic zero-mean right-hand side value at a global index.
fn rhs_at(g: usize) -> f64 {
    let h = (g as u64)
        .wrapping_mul(0xD1B54A32D192ED03)
        .rotate_left(29)
        .wrapping_mul(0x94D049BB133111EB);
    ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Run the MG kernel.
pub fn run(layer: &impl CommLayer, class: Class) -> KernelReport {
    let p = MgParams::for_class(class);
    let size = layer.size();
    let rank = layer.rank();
    assert_eq!(p.n % size, 0, "MG: ranks must divide n");
    let nzl = p.n / size;
    assert!(nzl >= 1);
    let model = ComputeModel::calibrated(Kernel::MG);
    let mut work = 0u64;

    // RHS with the global mean removed (periodic compatibility).
    let mut v = Slab::zeros(p.n, nzl);
    let z0 = rank * nzl;
    let mut local_sum = 0.0;
    for z in 1..=nzl {
        for y in 0..p.n {
            for x in 0..p.n {
                let g = ((z0 + z - 1) * p.n + y) * p.n + x;
                let val = rhs_at(g);
                v.u[gi(p.n, z, y, x)] = val;
                local_sum += val;
            }
        }
    }
    let mean = layer.allreduce_sum(&[local_sum])[0] / (p.n * p.n * p.n) as f64;
    for z in 1..=nzl {
        for y in 0..p.n {
            for x in 0..p.n {
                v.u[gi(p.n, z, y, x)] -= mean;
            }
        }
    }

    let mut u = Slab::zeros(p.n, nzl);
    let r0 = {
        let r = residual(layer, &mut u, &v, &model, &mut work);
        norm(layer, &r)
    };
    for _ in 0..p.cycles {
        vcycle(layer, &mut u, &v, &model, &mut work);
    }
    let rfin = {
        let r = residual(layer, &mut u, &v, &model, &mut work);
        norm(layer, &r)
    };

    KernelReport {
        verified: rfin < 0.3 * r0 && rfin.is_finite(),
        checksum: rfin,
        work_units: work,
    }
}

fn norm(layer: &impl CommLayer, s: &Slab) -> f64 {
    let n = s.n;
    let mut acc = 0.0;
    for z in 1..=s.nzl {
        for y in 0..n {
            for x in 0..n {
                let v = s.u[gi(n, z, y, x)];
                acc += v * v;
            }
        }
    }
    layer.allreduce_sum(&[acc])[0].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PlainLayer;
    use empi_mpi::World;
    use empi_netsim::NetModel;

    #[test]
    fn mg_reduces_residual_at_various_rank_counts() {
        for ranks in [1usize, 2, 4] {
            let w = World::flat(NetModel::instant(), ranks);
            let out = w.run(|c| run(&PlainLayer::new(c), Class::S));
            assert!(
                out.results[0].verified,
                "MG did not converge at {ranks} ranks (residual {})",
                out.results[0].checksum
            );
        }
    }

    #[test]
    fn restriction_preserves_constants_scaled() {
        // A constant fine residual restricts to the same constant × ½ ×
        // 8/8 (box average then ×0.5).
        let mut fine = Slab::zeros(8, 8);
        for v in fine.u.iter_mut() {
            *v = 2.0;
        }
        let coarse = restrict(&fine);
        assert_eq!(coarse.n, 4);
        for z in 1..=coarse.nzl {
            for y in 0..4 {
                for x in 0..4 {
                    assert_eq!(coarse.u[gi(4, z, y, x)], 8.0); // 2 × 8 × 0.5
                }
            }
        }
    }
}
