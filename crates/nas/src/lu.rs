//! LU — SSOR with a pipelined 2-D wavefront (the NAS LU kernel's
//! structure).
//!
//! The x-y domain is split over a 2-D rank grid; each Gauss–Seidel
//! lower sweep makes every tile wait for its **west and north boundary
//! vectors**, compute, then forward **east and south** — the classic LU
//! wavefront, a storm of small point-to-point messages. Multiple
//! z-planes flow through the pipeline back-to-back, so ranks deep in the
//! grid stay busy. The upper sweep runs the mirror-image wavefront.
//!
//! Because every point uses exactly the freshest neighbour values in
//! lexicographic order, the distributed sweep is *bitwise identical* to
//! the serial one — which the tests assert across rank counts.

use crate::layer::bytes::{f64s, to_f64s};
use crate::{Class, CommLayer, ComputeModel, Kernel, KernelReport};

/// LU parameters.
#[derive(Debug, Clone, Copy)]
pub struct LuParams {
    /// Global grid extent in x (rows).
    pub nx: usize,
    /// Global grid extent in y (columns).
    pub ny: usize,
    /// Independent planes pipelined per sweep.
    pub nz: usize,
    /// SSOR iterations.
    pub sweeps: usize,
}

impl LuParams {
    /// Parameters for a class.
    pub fn for_class(class: Class) -> Self {
        match class {
            Class::S => LuParams {
                nx: 24,
                ny: 24,
                nz: 3,
                sweeps: 4,
            },
            Class::MiniC => LuParams {
                nx: 192,
                ny: 192,
                nz: 24,
                sweeps: 12,
            },
        }
    }
}

const TAG: u32 = 800;

/// Factor `size` into a (rows, cols) rank grid dividing (nx, ny).
pub fn rank_grid(size: usize, nx: usize, ny: usize) -> (usize, usize) {
    let mut best = (1, size);
    let mut best_score = usize::MAX;
    for pr in 1..=size {
        if !size.is_multiple_of(pr) {
            continue;
        }
        let pc = size / pr;
        if nx.is_multiple_of(pr) && ny.is_multiple_of(pc) {
            let score = pr.abs_diff(pc);
            if score < best_score {
                best = (pr, pc);
                best_score = score;
            }
        }
    }
    assert!(
        best_score != usize::MAX,
        "no rank grid for {size} ranks over {nx}x{ny}"
    );
    best
}

struct Tile {
    nxl: usize,
    nyl: usize,
    /// `u[plane][(i+1)*(nyl+2) + (j+1)]` with ghost rows/cols.
    u: Vec<f64>,
    v: Vec<f64>,
}

impl Tile {
    #[inline]
    fn idx(&self, z: usize, i: isize, j: isize) -> usize {
        let w = self.nyl + 2;
        z * (self.nxl + 2) * w + ((i + 1) as usize) * w + (j + 1) as usize
    }
}

fn rhs_at(g: usize) -> f64 {
    let h = (g as u64)
        .wrapping_mul(0xA24BAED4963EE407)
        .rotate_left(23)
        .wrapping_mul(0x9FB21C651E98DF25);
    ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

/// Run the LU kernel.
pub fn run(layer: &impl CommLayer, class: Class) -> KernelReport {
    let p = LuParams::for_class(class);
    let size = layer.size();
    let me = layer.rank();
    let (pr, pc) = rank_grid(size, p.nx, p.ny);
    let (my_r, my_c) = (me / pc, me % pc);
    let (nxl, nyl) = (p.nx / pr, p.ny / pc);
    let (i0, j0) = (my_r * nxl, my_c * nyl);
    let model = ComputeModel::calibrated(Kernel::LU);
    let mut work = 0u64;

    let mut t = Tile {
        nxl,
        nyl,
        u: vec![0.0; p.nz * (nxl + 2) * (nyl + 2)],
        v: vec![0.0; p.nz * (nxl + 2) * (nyl + 2)],
    };
    for z in 0..p.nz {
        for i in 0..nxl {
            for j in 0..nyl {
                let g = (z * p.nx + i0 + i) * p.ny + j0 + j;
                let id = t.idx(z, i as isize, j as isize);
                t.v[id] = rhs_at(g);
            }
        }
    }

    let north = (my_r > 0).then(|| me - pc);
    let south = (my_r + 1 < pr).then(|| me + pc);
    let west = (my_c > 0).then(|| me - 1);
    let east = (my_c + 1 < pc).then(|| me + 1);

    let r0 = residual_norm(layer, &t, &model, &mut work, north, south, west, east, p.nz);

    for sweep in 0..p.sweeps {
        let base = TAG + 10 * sweep as u32;
        // Lower (forward) wavefront: deps on north row and west column.
        for z in 0..p.nz {
            let tag = base + z as u32 % 5;
            if let Some(n) = north {
                let row = to_f64s(&layer.recv(n, tag));
                for j in 0..nyl {
                    let id = t.idx(z, -1, j as isize);
                    t.u[id] = row[j];
                }
            }
            if let Some(w) = west {
                let col = to_f64s(&layer.recv(w, tag + 5));
                for i in 0..nxl {
                    let id = t.idx(z, i as isize, -1);
                    t.u[id] = col[i];
                }
            }
            let units = (nxl * nyl * 6) as u64;
            model.charge_with(layer, units, &mut || {
                for i in 0..nxl as isize {
                    for j in 0..nyl as isize {
                        let nb = t.u[t.idx(z, i - 1, j)]
                            + t.u[t.idx(z, i, j - 1)]
                            + t.u[t.idx(z, i + 1, j)]
                            + t.u[t.idx(z, i, j + 1)];
                        let id = t.idx(z, i, j);
                        t.u[id] = (t.v[id] + nb) / 4.0;
                    }
                }
            });
            work += units;
            if let Some(s) = south {
                let row: Vec<f64> = (0..nyl)
                    .map(|j| t.u[t.idx(z, nxl as isize - 1, j as isize)])
                    .collect();
                layer.send(f64s(&row), s, tag);
            }
            if let Some(e) = east {
                let col: Vec<f64> = (0..nxl)
                    .map(|i| t.u[t.idx(z, i as isize, nyl as isize - 1)])
                    .collect();
                layer.send(f64s(&col), e, tag + 5);
            }
        }
        // Upper (backward) wavefront: mirror image.
        for z in 0..p.nz {
            let tag = base + 1000 + z as u32 % 5;
            if let Some(s) = south {
                let row = to_f64s(&layer.recv(s, tag));
                for j in 0..nyl {
                    let id = t.idx(z, nxl as isize, j as isize);
                    t.u[id] = row[j];
                }
            }
            if let Some(e) = east {
                let col = to_f64s(&layer.recv(e, tag + 5));
                for i in 0..nxl {
                    let id = t.idx(z, i as isize, nyl as isize);
                    t.u[id] = col[i];
                }
            }
            let units = (nxl * nyl * 6) as u64;
            model.charge_with(layer, units, &mut || {
                for i in (0..nxl as isize).rev() {
                    for j in (0..nyl as isize).rev() {
                        let nb = t.u[t.idx(z, i - 1, j)]
                            + t.u[t.idx(z, i, j - 1)]
                            + t.u[t.idx(z, i + 1, j)]
                            + t.u[t.idx(z, i, j + 1)];
                        let id = t.idx(z, i, j);
                        t.u[id] = (t.v[id] + nb) / 4.0;
                    }
                }
            });
            work += units;
            if let Some(n) = north {
                let row: Vec<f64> = (0..nyl).map(|j| t.u[t.idx(z, 0, j as isize)]).collect();
                layer.send(f64s(&row), n, tag);
            }
            if let Some(w) = west {
                let col: Vec<f64> = (0..nxl).map(|i| t.u[t.idx(z, i as isize, 0)]).collect();
                layer.send(f64s(&col), w, tag + 5);
            }
        }
    }

    let rfin = residual_norm(layer, &t, &model, &mut work, north, south, west, east, p.nz);
    let unorm = {
        let mut acc = 0.0;
        for z in 0..p.nz {
            for i in 0..nxl as isize {
                for j in 0..nyl as isize {
                    let v = t.u[t.idx(z, i, j)];
                    acc += v * v;
                }
            }
        }
        layer.allreduce_sum(&[acc])[0].sqrt()
    };

    KernelReport {
        verified: rfin < 0.5 * r0 && rfin.is_finite(),
        checksum: unorm,
        work_units: work,
    }
}

/// ‖v − A u‖ with a full halo exchange (non-wavefront, symmetric).
#[allow(clippy::too_many_arguments)]
fn residual_norm(
    layer: &impl CommLayer,
    t: &Tile,
    model: &ComputeModel,
    work: &mut u64,
    north: Option<usize>,
    south: Option<usize>,
    west: Option<usize>,
    east: Option<usize>,
    nz: usize,
) -> f64 {
    // Exchange all four boundaries symmetrically (sendrecv pairs), then
    // evaluate the residual locally.
    let mut u = t.u.clone();
    let tag = TAG + 9000;
    for z in 0..nz {
        // North/south pair.
        let my_top: Vec<f64> = (0..t.nyl).map(|j| t.u[t.idx(z, 0, j as isize)]).collect();
        let my_bot: Vec<f64> = (0..t.nyl)
            .map(|j| t.u[t.idx(z, t.nxl as isize - 1, j as isize)])
            .collect();
        if let Some(n) = north {
            let ghost = to_f64s(&layer.sendrecv(f64s(&my_top), n, n, tag));
            for j in 0..t.nyl {
                u[t.idx(z, -1, j as isize)] = ghost[j];
            }
        }
        if let Some(s) = south {
            let ghost = to_f64s(&layer.sendrecv(f64s(&my_bot), s, s, tag));
            for j in 0..t.nyl {
                u[t.idx(z, t.nxl as isize, j as isize)] = ghost[j];
            }
        }
        // West/east pair.
        let my_w: Vec<f64> = (0..t.nxl).map(|i| t.u[t.idx(z, i as isize, 0)]).collect();
        let my_e: Vec<f64> = (0..t.nxl)
            .map(|i| t.u[t.idx(z, i as isize, t.nyl as isize - 1)])
            .collect();
        if let Some(w) = west {
            let ghost = to_f64s(&layer.sendrecv(f64s(&my_w), w, w, tag + 1));
            for i in 0..t.nxl {
                u[t.idx(z, i as isize, -1)] = ghost[i];
            }
        }
        if let Some(e) = east {
            let ghost = to_f64s(&layer.sendrecv(f64s(&my_e), e, e, tag + 1));
            for i in 0..t.nxl {
                u[t.idx(z, i as isize, t.nyl as isize)] = ghost[i];
            }
        }
    }
    let mut acc = 0.0;
    let units = (nz * t.nxl * t.nyl * 8) as u64;
    model.charge_with(layer, units, &mut || {
        for z in 0..nz {
            for i in 0..t.nxl as isize {
                for j in 0..t.nyl as isize {
                    let nb = u[t.idx(z, i - 1, j)]
                        + u[t.idx(z, i, j - 1)]
                        + u[t.idx(z, i + 1, j)]
                        + u[t.idx(z, i, j + 1)];
                    let r = t.v[t.idx(z, i, j)] - (4.0 * u[t.idx(z, i, j)] - nb);
                    acc += r * r;
                }
            }
        }
    });
    *work += units;
    layer.allreduce_sum(&[acc])[0].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PlainLayer;
    use empi_mpi::World;
    use empi_netsim::NetModel;

    #[test]
    fn rank_grid_divides() {
        assert_eq!(rank_grid(4, 24, 24), (2, 2));
        assert_eq!(rank_grid(8, 192, 192), (2, 4));
        assert_eq!(rank_grid(64, 192, 192), (8, 8));
        assert_eq!(rank_grid(1, 24, 24), (1, 1));
    }

    #[test]
    fn lu_converges_and_matches_serial_exactly() {
        let mut checks = Vec::new();
        for ranks in [1usize, 2, 4] {
            let w = World::flat(NetModel::instant(), ranks);
            let out = w.run(|c| run(&PlainLayer::new(c), Class::S));
            assert!(out.results[0].verified, "LU failed at {ranks} ranks");
            checks.push(out.results[0].checksum);
        }
        // Wavefront Gauss–Seidel is order-identical to serial; only the
        // allreduce summation order differs, so the norms must agree to
        // floating-point roundoff.
        for c in &checks[1..] {
            assert!(
                (c - checks[0]).abs() <= 1e-12 * checks[0].abs(),
                "partitioned sweep diverged from serial: {checks:?}"
            );
        }
    }
}
