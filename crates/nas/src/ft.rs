//! FT — 3-D FFT with slab decomposition (the NAS FT kernel's structure).
//!
//! The grid is distributed as z-slabs. Each 3-D transform does the x and
//! y FFTs locally, then an **alltoall transpose** (the kernel's dominant
//! communication — large blocks, exactly the case Fig. 8 stresses) to
//! make z local, then the z FFTs. The benchmark performs one forward
//! transform, then per iteration an evolve (phase multiply) in spectral
//! space and an inverse transform with a checksum, as in NAS FT.
//!
//! Self-verification: a forward+inverse round trip must reproduce the
//! initial state to near machine precision, and checksums must agree
//! across rank counts (covered by tests).

use crate::layer::CommLayer;
use crate::{Class, ComputeModel, Kernel, KernelReport};

/// Complex double (interleaved `re`, `im`) — safe to ship as bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[repr(C)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

// SAFETY: repr(C) pair of f64, no padding, any bit pattern valid.
unsafe impl empi_mpi::Pod for C64 {}

impl C64 {
    fn mul(self, o: C64) -> C64 {
        C64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
    fn add(self, o: C64) -> C64 {
        C64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
    fn sub(self, o: C64) -> C64 {
        C64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
    fn scale(self, s: f64) -> C64 {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

/// FT problem parameters (grid must be powers of two).
#[derive(Debug, Clone, Copy)]
pub struct FtParams {
    /// Grid extent in x.
    pub nx: usize,
    /// Grid extent in y.
    pub ny: usize,
    /// Grid extent in z.
    pub nz: usize,
    /// Evolve/inverse iterations.
    pub niter: usize,
}

impl FtParams {
    /// Parameters for a class.
    pub fn for_class(class: Class) -> Self {
        match class {
            Class::S => FtParams {
                nx: 16,
                ny: 16,
                nz: 16,
                niter: 3,
            },
            Class::MiniC => FtParams {
                nx: 64,
                ny: 64,
                nz: 64,
                niter: 8,
            },
        }
    }
}

/// In-place radix-2 FFT over `line` (`inverse` conjugates the twiddles;
/// no normalization — callers normalize after inverse).
fn fft_line(line: &mut [C64], inverse: bool) {
    let n = line.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            line.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64 {
            re: ang.cos(),
            im: ang.sin(),
        };
        let mut i = 0;
        while i < n {
            let mut w = C64 { re: 1.0, im: 0.0 };
            for k in 0..len / 2 {
                let u = line[i + k];
                let v = line[i + k + len / 2].mul(w);
                line[i + k] = u.add(v);
                line[i + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
            i += len;
        }
        len <<= 1;
    }
}

/// Deterministic pseudo-random initial field at a global flat index.
fn init_at(idx: usize) -> C64 {
    let h = (idx as u64)
        .wrapping_mul(0x9E3779B97F4A7C15)
        .rotate_left(31)
        .wrapping_mul(0xBF58476D1CE4E5B9);
    let re = (h >> 11) as f64 / (1u64 << 53) as f64;
    let im = ((h.wrapping_mul(0x94D049BB133111EB)) >> 11) as f64 / (1u64 << 53) as f64;
    C64 {
        re: re - 0.5,
        im: im - 0.5,
    }
}

/// Signed frequency index.
fn kbar(i: usize, n: usize) -> f64 {
    if i <= n / 2 {
        i as f64
    } else {
        i as f64 - n as f64
    }
}

struct FtState<'l, L: CommLayer> {
    layer: &'l L,
    p: FtParams,
    size: usize,
    nz_local: usize,
    ny_local: usize,
    model: ComputeModel,
    work_units: u64,
}

impl<'l, L: CommLayer> FtState<'l, L> {
    /// z-slab layout index: (z_local, y, x).
    fn zi(&self, z: usize, y: usize, x: usize) -> usize {
        (z * self.p.ny + y) * self.p.nx + x
    }
    /// y-slab (transposed) layout index: (y_local, z, x).
    fn yi(&self, y: usize, z: usize, x: usize) -> usize {
        (y * self.p.nz + z) * self.p.nx + x
    }

    /// Work units of `lines` FFT lines of length `len` (5·n·log n
    /// flops per line, 4 flops per unit).
    fn fft_units(lines: usize, len: usize) -> u64 {
        (lines * 5 * len * len.trailing_zeros() as usize) as u64 / 4
    }

    /// Local x FFTs then y FFTs on a z-slab buffer. The arithmetic
    /// runs through `compute_with`, so a sharded world overlaps it
    /// across ranks on real cores.
    fn fft_xy(&mut self, u: &mut [C64], inverse: bool) {
        let (nx, ny, nzl) = (self.p.nx, self.p.ny, self.nz_local);
        let zi = |z: usize, y: usize, x: usize| (z * ny + y) * nx + x;
        let units_x = Self::fft_units(nzl * ny, nx);
        self.model.charge_with(self.layer, units_x, &mut || {
            for z in 0..nzl {
                for y in 0..ny {
                    let base = zi(z, y, 0);
                    fft_line(&mut u[base..base + nx], inverse);
                }
            }
        });
        self.work_units += units_x;
        let units_y = Self::fft_units(nzl * nx, ny);
        self.model.charge_with(self.layer, units_y, &mut || {
            let mut tmp = vec![C64::default(); ny];
            for z in 0..nzl {
                for x in 0..nx {
                    for y in 0..ny {
                        tmp[y] = u[zi(z, y, x)];
                    }
                    fft_line(&mut tmp, inverse);
                    for y in 0..ny {
                        u[zi(z, y, x)] = tmp[y];
                    }
                }
            }
        });
        self.work_units += units_y;
    }

    /// z-slab → y-slab transpose via alltoall.
    fn transpose_to_y(&mut self, u: &[C64]) -> Vec<C64> {
        let (nx, nz) = (self.p.nx, self.p.nz);
        let p = self.size;
        let block_elems = self.nz_local * self.ny_local * nx;
        let mut send = vec![C64::default(); block_elems * p];
        for dst in 0..p {
            for z in 0..self.nz_local {
                for yy in 0..self.ny_local {
                    let y = dst * self.ny_local + yy;
                    let so = dst * block_elems + (z * self.ny_local + yy) * nx;
                    let io = self.zi(z, y, 0);
                    send[so..so + nx].copy_from_slice(&u[io..io + nx]);
                }
            }
        }
        let recv = self.layer.alltoall(
            empi_mpi::as_bytes(&send),
            block_elems * std::mem::size_of::<C64>(),
        );
        let recv: Vec<C64> = empi_mpi::vec_from_bytes(&recv);
        let mut out = vec![C64::default(); self.ny_local * nz * nx];
        for src in 0..p {
            for zz in 0..self.nz_local {
                let z = src * self.nz_local + zz;
                for yy in 0..self.ny_local {
                    let so = src * block_elems + (zz * self.ny_local + yy) * nx;
                    let oo = self.yi(yy, z, 0);
                    out[oo..oo + nx].copy_from_slice(&recv[so..so + nx]);
                }
            }
        }
        out
    }

    /// y-slab → z-slab transpose (inverse of `transpose_to_y`).
    fn transpose_to_z(&mut self, v: &[C64]) -> Vec<C64> {
        let (nx, ny) = (self.p.nx, self.p.ny);
        let p = self.size;
        let block_elems = self.nz_local * self.ny_local * nx;
        let mut send = vec![C64::default(); block_elems * p];
        for dst in 0..p {
            for yy in 0..self.ny_local {
                for zz in 0..self.nz_local {
                    let z = dst * self.nz_local + zz;
                    let so = dst * block_elems + (zz * self.ny_local + yy) * nx;
                    let io = self.yi(yy, z, 0);
                    send[so..so + nx].copy_from_slice(&v[io..io + nx]);
                }
            }
        }
        let recv = self.layer.alltoall(
            empi_mpi::as_bytes(&send),
            block_elems * std::mem::size_of::<C64>(),
        );
        let recv: Vec<C64> = empi_mpi::vec_from_bytes(&recv);
        let mut out = vec![C64::default(); self.nz_local * ny * nx];
        for src in 0..p {
            for zz in 0..self.nz_local {
                for yy in 0..self.ny_local {
                    let y = src * self.ny_local + yy;
                    let so = src * block_elems + (zz * self.ny_local + yy) * nx;
                    let oo = self.zi(zz, y, 0);
                    out[oo..oo + nx].copy_from_slice(&recv[so..so + nx]);
                }
            }
        }
        out
    }

    /// z FFTs in the y-slab layout, detached like [`Self::fft_xy`].
    fn fft_z(&mut self, v: &mut [C64], inverse: bool) {
        let (nx, nz, nyl) = (self.p.nx, self.p.nz, self.ny_local);
        let yi = |y: usize, z: usize, x: usize| (y * nz + z) * nx + x;
        let units = Self::fft_units(nyl * nx, nz);
        self.model.charge_with(self.layer, units, &mut || {
            let mut tmp = vec![C64::default(); nz];
            for y in 0..nyl {
                for x in 0..nx {
                    for z in 0..nz {
                        tmp[z] = v[yi(y, z, x)];
                    }
                    fft_line(&mut tmp, inverse);
                    for z in 0..nz {
                        v[yi(y, z, x)] = tmp[z];
                    }
                }
            }
        });
        self.work_units += units;
    }
}

/// Run the FT kernel.
pub fn run(layer: &impl CommLayer, class: Class) -> KernelReport {
    let p = FtParams::for_class(class);
    let size = layer.size();
    let rank = layer.rank();
    assert_eq!(p.nz % size, 0, "FT: ranks must divide nz");
    assert_eq!(p.ny % size, 0, "FT: ranks must divide ny");
    let mut st = FtState {
        layer,
        p,
        size,
        nz_local: p.nz / size,
        ny_local: p.ny / size,
        model: ComputeModel::calibrated(Kernel::FT),
        work_units: 0,
    };
    let n_total = p.nx * p.ny * p.nz;
    let norm = 1.0 / n_total as f64;

    // Initial field on my z-slab.
    let z0 = rank * st.nz_local;
    let mut u0 = vec![C64::default(); st.nz_local * p.ny * p.nx];
    for z in 0..st.nz_local {
        for y in 0..p.ny {
            for x in 0..p.nx {
                let g = ((z0 + z) * p.ny + y) * p.nx + x;
                u0[st.zi(z, y, x)] = init_at(g);
            }
        }
    }

    // Forward 3-D FFT.
    let mut work = u0.clone();
    st.fft_xy(&mut work, false);
    let mut spec = st.transpose_to_y(&work);
    st.fft_z(&mut spec, false);

    // Round-trip verification.
    let mut back = spec.clone();
    st.fft_z(&mut back, true);
    let mut back_z = st.transpose_to_z(&back);
    st.fft_xy(&mut back_z, true);
    let mut err: f64 = 0.0;
    for (a, b) in back_z.iter().zip(u0.iter()) {
        let d = a.scale(norm).sub(*b);
        err += d.re * d.re + d.im * d.im;
    }
    let err = st.layer.allreduce_sum(&[err])[0].sqrt();
    let verified = err < 1e-9;

    // Evolve + inverse per iteration, with a spectral damping factor.
    let alpha = 1e-6;
    let mut checksum = 0.0;
    for t in 1..=p.niter {
        // Evolve in spectral space (y-slab layout).
        let y0 = rank * st.ny_local;
        let units = (st.ny_local * p.nz * p.nx) as u64 * 4;
        let ny_local = st.ny_local;
        st.model.charge_with(st.layer, units, &mut || {
            for yy in 0..ny_local {
                let ky = kbar(y0 + yy, p.ny);
                for z in 0..p.nz {
                    let kz = kbar(z, p.nz);
                    for x in 0..p.nx {
                        let kx = kbar(x, p.nx);
                        let k2 = kx * kx + ky * ky + kz * kz;
                        let f = (-4.0
                            * std::f64::consts::PI
                            * std::f64::consts::PI
                            * alpha
                            * t as f64
                            * k2)
                            .exp();
                        let idx = (yy * p.nz + z) * p.nx + x;
                        spec[idx] = spec[idx].scale(f);
                    }
                }
            }
        });
        st.work_units += units;

        // Inverse transform back to a z-slab field.
        let mut v = spec.clone();
        st.fft_z(&mut v, true);
        let mut w = st.transpose_to_z(&v);
        st.fft_xy(&mut w, true);

        // NAS-style scattered checksum over 1024 global indices.
        let mut local = C64::default();
        for j in 0..1024usize {
            let g = (j.wrapping_mul(1_093_541) + 17) % n_total;
            let gz = g / (p.ny * p.nx);
            if gz >= z0 && gz < z0 + st.nz_local {
                let rem = g % (p.ny * p.nx);
                local = local.add(w[st.zi(gz - z0, rem / p.nx, rem % p.nx)].scale(norm));
            }
        }
        let s = st.layer.allreduce_sum(&[local.re, local.im]);
        checksum += s[0] + s[1];
    }

    KernelReport {
        verified: verified && checksum.is_finite(),
        checksum,
        work_units: st.work_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PlainLayer;
    use empi_mpi::World;
    use empi_netsim::NetModel;

    #[test]
    fn fft_line_round_trip() {
        let mut line: Vec<C64> = (0..64)
            .map(|i| C64 {
                re: (i as f64 * 0.37).sin(),
                im: (i as f64 * 0.91).cos(),
            })
            .collect();
        let orig = line.clone();
        fft_line(&mut line, false);
        fft_line(&mut line, true);
        for (a, b) in line.iter().zip(orig.iter()) {
            assert!((a.re / 64.0 - b.re).abs() < 1e-12);
            assert!((a.im / 64.0 - b.im).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_matches_dft_small() {
        let n = 8;
        let input: Vec<C64> = (0..n).map(|i| init_at(i * 7 + 3)).collect();
        let mut fast = input.clone();
        fft_line(&mut fast, false);
        for k in 0..n {
            let mut acc = C64::default();
            for (j, x) in input.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64;
                acc = acc.add(x.mul(C64 {
                    re: ang.cos(),
                    im: ang.sin(),
                }));
            }
            assert!((acc.re - fast[k].re).abs() < 1e-10, "k={k}");
            assert!((acc.im - fast[k].im).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn ft_verifies_and_is_rank_count_invariant() {
        let mut sums = Vec::new();
        for ranks in [1usize, 2, 4] {
            let w = World::flat(NetModel::instant(), ranks);
            let out = w.run(|c| run(&PlainLayer::new(c), Class::S));
            assert!(out.results[0].verified, "FT round trip failed at {ranks}");
            sums.push(out.results[0].checksum);
        }
        for s in &sums[1..] {
            assert!(
                (s - sums[0]).abs() < 1e-9 * sums[0].abs().max(1.0),
                "checksums differ: {sums:?}"
            );
        }
    }
}
