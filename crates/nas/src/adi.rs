//! BT / SP — ADI (alternating-direction implicit) solvers on a 3-D grid
//! (the structure of the NAS BT and SP kernels).
//!
//! The grid is z-partitioned. Each iteration performs implicit line
//! solves along x, y (local) and z (distributed): the z solve is a
//! **pipelined Thomas algorithm** — forward-elimination carries flow
//! down the rank chain in batches of lines, back-substitution flows back
//! up — the medium-size neighbour traffic characteristic of BT/SP.
//!
//! The two kernels share this framework and differ in their local math,
//! like their NAS namesakes differ in solver class:
//!
//! * **BT** ("block tridiagonal"): five coupled variables; tridiagonal
//!   solves per variable plus a dense 5×5 per-cell coupling multiply
//!   each iteration (the block character, kept at real-arithmetic cost).
//! * **SP** ("scalar pentadiagonal"): five variables with *pentadiagonal*
//!   x/y line solves (true 5-band Thomas) and tridiagonal z solves.
//!
//! Both are heat-equation-style diffusions with zero Dirichlet
//! boundaries, so the solution energy must decrease monotonically —
//! that, plus rank-count invariance of the checksum, is the built-in
//! verification.

use crate::layer::bytes::{f64s, to_f64s};
use crate::{Class, CommLayer, ComputeModel, Kernel, KernelReport};

/// Which ADI kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdiKind {
    /// Block-tridiagonal flavour.
    Bt,
    /// Scalar-pentadiagonal flavour.
    Sp,
}

/// ADI parameters.
#[derive(Debug, Clone, Copy)]
pub struct AdiParams {
    /// Grid extent per dimension (cube).
    pub n: usize,
    /// Coupled variables per cell.
    pub nvar: usize,
    /// ADI iterations.
    pub iters: usize,
    /// Lines per pipeline message batch in the z solve.
    pub batch: usize,
}

impl AdiParams {
    /// Parameters for a class and kind.
    pub fn for_class(class: Class, kind: AdiKind) -> Self {
        match (class, kind) {
            (Class::S, _) => AdiParams {
                n: 16,
                nvar: 5,
                iters: 3,
                batch: 64,
            },
            (Class::MiniC, AdiKind::Bt) => AdiParams {
                n: 64,
                nvar: 5,
                iters: 6,
                batch: 512,
            },
            (Class::MiniC, AdiKind::Sp) => AdiParams {
                n: 64,
                nvar: 5,
                iters: 8,
                batch: 512,
            },
        }
    }
}

const SIGMA: f64 = 0.4;
const TAG: u32 = 900;

/// Solve `(I + σ·tridiag(−1, 2, −1)) x = d` in place (Thomas, Dirichlet).
fn thomas_tridiag(d: &mut [f64]) {
    let n = d.len();
    let a = -SIGMA;
    let b = 1.0 + 2.0 * SIGMA;
    let mut cp = vec![0.0f64; n];
    let mut prev_c = 0.0;
    for k in 0..n {
        let denom = b - a * prev_c;
        cp[k] = a / denom;
        d[k] = (d[k] - a * if k > 0 { d[k - 1] } else { 0.0 }) / denom;
        prev_c = cp[k];
    }
    for k in (0..n - 1).rev() {
        d[k] -= cp[k] * d[k + 1];
    }
}

/// Solve a diagonally-dominant pentadiagonal system
/// `(I + σ·penta(1, −4, 6, −4, 1)/2) x = d` in place (5-band Gaussian
/// elimination without pivoting).
fn penta_solve(d: &mut [f64]) {
    let n = d.len();
    if n < 3 {
        thomas_tridiag(d);
        return;
    }
    let (e, a, b0, c, f) = (
        SIGMA * 0.5,
        -2.0 * SIGMA,
        1.0 + 3.0 * SIGMA,
        -2.0 * SIGMA,
        SIGMA * 0.5,
    );
    // Band storage: sub2, sub1, diag, sup1, sup2 per row.
    let mut sub1 = vec![a; n];
    let mut diag = vec![b0; n];
    let mut sup1 = vec![c; n];
    let mut sup2 = vec![f; n];
    sub1[0] = 0.0;
    sup1[n - 1] = 0.0;
    sup2[n - 1] = 0.0;
    if n > 1 {
        sup2[n - 2] = 0.0;
    }
    // Forward elimination of sub2 then sub1.
    for k in 0..n {
        if k >= 1 {
            let m = sub1[k] / diag[k - 1];
            diag[k] -= m * sup1[k - 1];
            sup1[k] -= m * sup2[k - 1];
            d[k] -= m * d[k - 1];
        }
        if k + 2 < n {
            let m = e / diag[k]; // sub2 of row k+2 eliminated against row k
            sub1[k + 2] -= m * sup1[k];
            // its diagonal gets hit by sup2 of row k
            diag[k + 2] -= m * sup2[k];
            d[k + 2] -= m * d[k];
        }
    }
    // Back substitution.
    d[n - 1] /= diag[n - 1];
    if n >= 2 {
        d[n - 2] = (d[n - 2] - sup1[n - 2] * d[n - 1]) / diag[n - 2];
    }
    for k in (0..n.saturating_sub(2)).rev() {
        d[k] = (d[k] - sup1[k] * d[k + 1] - sup2[k] * d[k + 2]) / diag[k];
    }
}

fn init_at(g: usize) -> f64 {
    let h = (g as u64)
        .wrapping_mul(0xC2B2AE3D27D4EB4F)
        .rotate_left(27)
        .wrapping_mul(0x165667B19E3779F9);
    ((h >> 11) as f64 / (1u64 << 53) as f64) - 0.5
}

struct Grid {
    n: usize,
    nzl: usize,
    nvar: usize,
    /// `u[v][((z*n)+y)*n+x]`, z local.
    u: Vec<Vec<f64>>,
}

impl Grid {
    #[inline]
    fn idx(n: usize, z: usize, y: usize, x: usize) -> usize {
        (z * n + y) * n + x
    }
}

/// Run a BT- or SP-flavoured ADI kernel.
pub fn run(layer: &impl CommLayer, class: Class, kind: AdiKind) -> KernelReport {
    let kernel = match kind {
        AdiKind::Bt => Kernel::BT,
        AdiKind::Sp => Kernel::SP,
    };
    let p = AdiParams::for_class(class, kind);
    let size = layer.size();
    let rank = layer.rank();
    assert_eq!(p.n % size, 0, "ADI: ranks must divide n");
    let nzl = p.n / size;
    let model = ComputeModel::calibrated(kernel);
    let mut work = 0u64;

    let mut g = Grid {
        n: p.n,
        nzl,
        nvar: p.nvar,
        u: (0..p.nvar)
            .map(|v| {
                let mut field = vec![0.0f64; nzl * p.n * p.n];
                let z0 = rank * nzl;
                for z in 0..nzl {
                    for y in 0..p.n {
                        for x in 0..p.n {
                            let gl = (((z0 + z) * p.n + y) * p.n + x) * p.nvar + v;
                            field[Grid::idx(p.n, z, y, x)] = init_at(gl);
                        }
                    }
                }
                field
            })
            .collect(),
    };

    let mut prev_energy = total_energy(layer, &g);
    let mut monotone = true;
    let next = (rank + 1 < size).then(|| rank + 1);
    let prev = (rank > 0).then(|| rank - 1);

    for iter in 0..p.iters {
        for v in 0..p.nvar {
            // x and y sweeps: pure local math, detached.
            let units = (2 * nzl * p.n * p.n * 9) as u64;
            model.charge_with(layer, units, &mut || {
                // x sweep (rows contiguous).
                for z in 0..nzl {
                    for y in 0..p.n {
                        let base = Grid::idx(p.n, z, y, 0);
                        let line = &mut g.u[v][base..base + p.n];
                        match kind {
                            AdiKind::Bt => thomas_tridiag(line),
                            AdiKind::Sp => penta_solve(line),
                        }
                    }
                }
                // y sweep (strided).
                let mut tmp = vec![0.0f64; p.n];
                for z in 0..nzl {
                    for x in 0..p.n {
                        for y in 0..p.n {
                            tmp[y] = g.u[v][Grid::idx(p.n, z, y, x)];
                        }
                        match kind {
                            AdiKind::Bt => thomas_tridiag(&mut tmp),
                            AdiKind::Sp => penta_solve(&mut tmp),
                        }
                        for y in 0..p.n {
                            g.u[v][Grid::idx(p.n, z, y, x)] = tmp[y];
                        }
                    }
                }
            });
            work += units;

            // z sweep: pipelined Thomas across the rank chain.
            z_sweep_pipelined(layer, &mut g, v, p.batch, prev, next, iter as u32);
            let units = (nzl * p.n * p.n * 9) as u64;
            model.charge(layer, units);
            work += units;
        }

        if kind == AdiKind::Bt {
            // 5×5 per-cell coupling: u ← M u with a fixed
            // strictly-diagonally-dominant averaging matrix (row sums 1,
            // so energy keeps decaying).
            let m: [[f64; 5]; 5] = {
                let mut m = [[0.02f64; 5]; 5];
                for (r, row) in m.iter_mut().enumerate() {
                    row[r] = 0.92;
                }
                m
            };
            let vol = nzl * p.n * p.n;
            let units = (vol * 50) as u64;
            model.charge_with(layer, units, &mut || {
                let mut cell = [0.0f64; 5];
                for i in 0..vol {
                    for (v, c) in cell.iter_mut().enumerate() {
                        *c = g.u[v][i];
                    }
                    for v in 0..5 {
                        let mut acc = 0.0;
                        for (w, c) in cell.iter().enumerate() {
                            acc += m[v][w] * c;
                        }
                        g.u[v][i] = acc;
                    }
                }
            });
            work += units;
        }

        let e = total_energy(layer, &g);
        if e > prev_energy * (1.0 + 1e-12) {
            monotone = false;
        }
        prev_energy = e;
    }

    KernelReport {
        verified: monotone && prev_energy.is_finite() && prev_energy > 0.0,
        checksum: prev_energy,
        work_units: work,
    }
}

/// Distributed Thomas along z for all (x, y) lines of variable `v`,
/// batched to amortize pipeline messages.
fn z_sweep_pipelined(
    layer: &impl CommLayer,
    g: &mut Grid,
    v: usize,
    batch: usize,
    prev: Option<usize>,
    next: Option<usize>,
    round: u32,
) {
    let n = g.n;
    let nzl = g.nzl;
    let n_lines = n * n;
    let a = -SIGMA;
    let b = 1.0 + 2.0 * SIGMA;
    let tag = TAG + 40 + (round % 4) * 2 + (v as u32 % 2) * 8;

    // Per-line elimination state: (c'_last, d'_last) entering this rank.
    let mut cp_store = vec![0.0f64; nzl * n_lines];

    for lb in (0..n_lines).step_by(batch) {
        let lines = (lb..(lb + batch).min(n_lines)).collect::<Vec<_>>();
        // Incoming carry from the previous rank: (c', d') per line.
        let carry: Vec<f64> = match prev {
            Some(pr) => to_f64s(&layer.recv(pr, tag)),
            None => vec![0.0; lines.len() * 2],
        };
        let mut out_carry = Vec::with_capacity(lines.len() * 2);
        for (li, &line) in lines.iter().enumerate() {
            let (y, x) = (line / n, line % n);
            let mut prev_c = carry[2 * li];
            let mut prev_d = carry[2 * li + 1];
            for z in 0..nzl {
                let idx = Grid::idx(n, z, y, x);
                let denom = b - a * prev_c;
                let cp = a / denom;
                let d = (g.u[v][idx] - a * prev_d) / denom;
                cp_store[z * n_lines + line] = cp;
                g.u[v][idx] = d;
                prev_c = cp;
                prev_d = d;
            }
            out_carry.push(prev_c);
            out_carry.push(prev_d);
        }
        if let Some(nx) = next {
            layer.send(f64s(&out_carry), nx, tag);
        }
    }

    // Back substitution: x_k = d'_k − c'_k · x_{k+1}, flowing upstream.
    for lb in (0..n_lines).step_by(batch) {
        let lines = (lb..(lb + batch).min(n_lines)).collect::<Vec<_>>();
        let upstream: Vec<f64> = match next {
            Some(nx) => to_f64s(&layer.recv(nx, tag + 1)),
            None => vec![0.0; lines.len()],
        };
        let mut out = Vec::with_capacity(lines.len());
        for (li, &line) in lines.iter().enumerate() {
            let (y, x) = (line / n, line % n);
            let mut xk1 = upstream[li];
            for z in (0..nzl).rev() {
                let idx = Grid::idx(n, z, y, x);
                let val = g.u[v][idx] - cp_store[z * n_lines + line] * xk1;
                g.u[v][idx] = val;
                xk1 = val;
            }
            out.push(xk1);
        }
        if let Some(pr) = prev {
            layer.send(f64s(&out), pr, tag + 1);
        }
    }
}

fn total_energy(layer: &impl CommLayer, g: &Grid) -> f64 {
    let mut acc = 0.0;
    for v in 0..g.nvar {
        for val in &g.u[v] {
            acc += val * val;
        }
    }
    layer.allreduce_sum(&[acc])[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::PlainLayer;
    use empi_mpi::World;
    use empi_netsim::NetModel;

    #[test]
    fn thomas_solves_tridiagonal() {
        // Verify A x = d by reconstruction.
        let n = 10;
        let d0: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut x = d0.clone();
        thomas_tridiag(&mut x);
        for k in 0..n {
            let left = if k > 0 { x[k - 1] } else { 0.0 };
            let right = if k + 1 < n { x[k + 1] } else { 0.0 };
            let ax = -SIGMA * left + (1.0 + 2.0 * SIGMA) * x[k] - SIGMA * right;
            assert!((ax - d0[k]).abs() < 1e-12, "row {k}");
        }
    }

    #[test]
    fn penta_solves_pentadiagonal() {
        let n = 12;
        let d0: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
        let mut x = d0.clone();
        penta_solve(&mut x);
        let (e, a, b0, c, f) = (
            SIGMA * 0.5,
            -2.0 * SIGMA,
            1.0 + 3.0 * SIGMA,
            -2.0 * SIGMA,
            SIGMA * 0.5,
        );
        for k in 0..n {
            let g = |i: isize| -> f64 {
                if i < 0 || i as usize >= n {
                    0.0
                } else {
                    x[i as usize]
                }
            };
            let k = k as isize;
            let ax = e * g(k - 2) + a * g(k - 1) + b0 * g(k) + c * g(k + 1) + f * g(k + 2);
            assert!((ax - d0[k as usize]).abs() < 1e-10, "row {k}");
        }
    }

    #[test]
    fn bt_and_sp_verify_and_are_partition_invariant() {
        for kind in [AdiKind::Bt, AdiKind::Sp] {
            let mut sums = Vec::new();
            for ranks in [1usize, 2, 4] {
                let w = World::flat(NetModel::instant(), ranks);
                let out = w.run(|c| run(&PlainLayer::new(c), Class::S, kind));
                assert!(out.results[0].verified, "{kind:?} at {ranks} ranks");
                sums.push(out.results[0].checksum);
            }
            for s in &sums[1..] {
                assert!(
                    (s - sums[0]).abs() < 1e-9 * sums[0].abs(),
                    "{kind:?} partition-dependent: {sums:?}"
                );
            }
        }
    }

    #[test]
    fn bt_and_sp_produce_different_dynamics() {
        let w = World::flat(NetModel::instant(), 2);
        let bt = w.run(|c| run(&PlainLayer::new(c), Class::S, AdiKind::Bt));
        let sp = w.run(|c| run(&PlainLayer::new(c), Class::S, AdiKind::Sp));
        assert_ne!(bt.results[0].checksum, sp.results[0].checksum);
    }
}
