//! IS — parallel integer (bucket) sort (the NAS IS kernel's structure).
//!
//! Per iteration, as in NAS IS:
//! 1. every rank generates its share of uniformly-distributed keys,
//! 2. a coarse histogram is **allreduced** to choose balanced bucket
//!    boundaries,
//! 3. keys travel to their bucket owner via **alltoallv** (the kernel's
//!    dominant, large-and-ragged communication),
//! 4. each rank counting-sorts its bucket locally.
//!
//! Verification: global sortedness across rank boundaries, conservation
//! of the key count, and conservation of the key sum.

use crate::layer::bytes::{to_u32s, u32s};
use crate::{Class, CommLayer, ComputeModel, Kernel, KernelReport, NasRandom};

/// IS parameters.
#[derive(Debug, Clone, Copy)]
pub struct IsParams {
    /// Keys per rank.
    pub keys_per_rank: usize,
    /// Key range: `[0, 2^log2_max)`.
    pub log2_max: u32,
    /// Sort iterations.
    pub iters: usize,
    /// Coarse histogram bins for boundary selection.
    pub hist_bins: usize,
}

impl IsParams {
    /// Parameters for a class.
    pub fn for_class(class: Class) -> Self {
        match class {
            Class::S => IsParams {
                keys_per_rank: 4_096,
                log2_max: 16,
                iters: 2,
                hist_bins: 256,
            },
            Class::MiniC => IsParams {
                keys_per_rank: 131_072,
                log2_max: 23,
                iters: 10,
                hist_bins: 1024,
            },
        }
    }
}

/// Run the IS kernel.
pub fn run(layer: &impl CommLayer, class: Class) -> KernelReport {
    let p = IsParams::for_class(class);
    let size = layer.size();
    let rank = layer.rank();
    let model = ComputeModel::calibrated(Kernel::IS);
    let mut work = 0u64;
    let max_key = 1u32 << p.log2_max;

    let mut verified = true;
    let mut checksum = 0.0f64;

    for iter in 0..p.iters {
        // 1. Generate keys (deterministic per rank and iteration).
        let mut rng = NasRandom::new((rank as u64 + 1) * 2654435761 + iter as u64 * 97);
        let keys: Vec<u32> = (0..p.keys_per_rank)
            .map(|_| rng.next_u32(max_key))
            .collect();
        let key_sum_before: f64 = keys.iter().map(|&k| k as f64).sum();

        // 2. Coarse histogram + allreduce, then balanced boundaries.
        let shift = p.log2_max - (p.hist_bins as u32).trailing_zeros();
        let mut hist = vec![0.0f64; p.hist_bins];
        let units = (p.keys_per_rank * 2) as u64;
        model.charge_with(layer, units, &mut || {
            for &k in &keys {
                hist[(k >> shift) as usize] += 1.0;
            }
        });
        work += units;
        let global_hist = layer.allreduce_sum(&hist);
        let total_keys: f64 = global_hist.iter().sum();
        // Bucket b owns bins until the cumulative count passes
        // (b+1)/size of the total.
        let mut boundaries = Vec::with_capacity(size); // exclusive bin end per bucket
        let mut acc = 0.0;
        let mut bin = 0usize;
        for b in 0..size {
            let target = total_keys * (b as f64 + 1.0) / size as f64;
            while bin < p.hist_bins && acc + global_hist[bin] <= target {
                acc += global_hist[bin];
                bin += 1;
            }
            boundaries.push(bin.min(p.hist_bins));
        }
        boundaries[size - 1] = p.hist_bins;

        // 3. Partition keys by owner and alltoallv.
        let owner_of = |k: u32| -> usize {
            let b = (k >> shift) as usize;
            boundaries.partition_point(|&end| end <= b)
        };
        let mut outgoing: Vec<Vec<u32>> = vec![Vec::new(); size];
        for &k in &keys {
            outgoing[owner_of(k)].push(k);
        }
        let send_counts: Vec<usize> = outgoing.iter().map(|v| v.len() * 4).collect();
        // Counts must be exchanged first (alltoall of one u64 per pair).
        let counts_flat: Vec<u32> = outgoing.iter().map(|v| v.len() as u32).collect();
        let recv_counts_bytes = layer.alltoall(u32s(&counts_flat), 4);
        let recv_counts: Vec<usize> = to_u32s(&recv_counts_bytes)
            .into_iter()
            .map(|c| c as usize * 4)
            .collect();
        let send_flat: Vec<u32> = outgoing.into_iter().flatten().collect();
        let incoming = to_u32s(&layer.alltoallv(u32s(&send_flat), &send_counts, &recv_counts));

        // 4. Local counting sort over my bucket's bin range.
        let lo_bin = if rank == 0 { 0 } else { boundaries[rank - 1] };
        let hi_bin = boundaries[rank];
        let lo_key = (lo_bin as u32) << shift;
        let hi_key = ((hi_bin as u32) << shift).min(max_key);
        let mut counts = vec![0u32; (hi_key - lo_key) as usize + 1];
        let mut sorted = Vec::with_capacity(incoming.len());
        let units = (incoming.len() * 4 + counts.len()) as u64;
        model.charge_with(layer, units, &mut || {
            for &k in &incoming {
                assert!(k >= lo_key && k < hi_key.max(lo_key + 1), "misrouted key");
                counts[(k - lo_key) as usize] += 1;
            }
            for (off, &c) in counts.iter().enumerate() {
                for _ in 0..c {
                    sorted.push(lo_key + off as u32);
                }
            }
        });
        work += units;

        // 5. Verification.
        // (a) Local sortedness.
        let locally_sorted = sorted.windows(2).all(|w| w[0] <= w[1]);
        // (b) Boundary order with the next rank.
        let my_max = sorted.last().copied().unwrap_or(0);
        let maxes = layer.allgather(u32s(&[my_max]));
        let maxes = to_u32s(&maxes);
        let boundary_ok = if rank > 0 && !sorted.is_empty() {
            // Previous rank's max must be ≤ my min — unless the previous
            // bucket is empty (its reported max is 0).
            maxes[rank - 1] <= sorted[0] || maxes[rank - 1] == 0
        } else {
            true
        };
        // (c) Conservation of count and sum.
        let stats = layer.allreduce_sum(&[
            sorted.len() as f64,
            sorted.iter().map(|&k| k as f64).sum(),
            key_sum_before,
        ]);
        let conserved = stats[0] == total_keys && (stats[1] - stats[2]).abs() < 1e-6;

        verified &= locally_sorted && boundary_ok && conserved;
        checksum += stats[1];
    }

    KernelReport {
        verified,
        checksum,
        work_units: work,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{PlainLayer, SecureLayer};
    use empi_core::SecurityConfig;
    use empi_mpi::World;
    use empi_netsim::NetModel;

    #[test]
    fn is_sorts_at_various_rank_counts() {
        let mut sums = Vec::new();
        for ranks in [1usize, 2, 4, 8] {
            let w = World::flat(NetModel::instant(), ranks);
            let out = w.run(|c| run(&PlainLayer::new(c), Class::S));
            assert!(out.results[0].verified, "IS failed at {ranks} ranks");
            sums.push(out.results[0].checksum);
        }
        // Key-sum checksum depends only on generation, not partitioning
        // ... except the number of generating ranks changes the key set;
        // so only assert positivity here.
        assert!(sums.iter().all(|s| *s > 0.0));
    }

    #[test]
    fn is_identical_under_encryption() {
        let w = World::flat(NetModel::instant(), 4);
        let plain = w.run(|c| run(&PlainLayer::new(c), Class::S));
        let enc = w.run(|c| {
            let l = SecureLayer::new(c, SecurityConfig::new(empi_aead::CryptoLibrary::CryptoPp));
            run(&l, Class::S)
        });
        assert!(enc.results[0].verified);
        assert_eq!(plain.results[0].checksum, enc.results[0].checksum);
        assert!(enc.end_time > plain.end_time);
    }
}
