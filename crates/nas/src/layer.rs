//! The communication layer abstraction: every NAS kernel is written once
//! against [`CommLayer`] and runs unchanged on plain MPI (the baseline)
//! or on the encrypted library (the measurement) — mirroring how the
//! paper relinks the same NAS binaries against its encrypted MPICH.
//!
//! Per §IV, the encrypted library covers point-to-point plus
//! `Bcast`/`Allgather`/`Alltoall`/`Alltoallv`; reductions and barriers
//! pass through the plain library in both layers.

use empi_core::{SecureComm, SecurityConfig};
use empi_mpi::{Comm, Src, Tag, TagSel};
use empi_netsim::VDur;

/// Communication operations the NAS kernels need.
pub trait CommLayer {
    /// This rank.
    fn rank(&self) -> usize;
    /// World size.
    fn size(&self) -> usize;
    /// Charge compute time to this rank's virtual core.
    fn compute(&self, d: VDur);
    /// Charge `d` of modeled compute time while running `f` — the
    /// kernel's real arithmetic. Under a sharded world the closure
    /// overlaps with other ranks on real cores; the default simply
    /// runs `f` then charges (the serial behaviour). `&mut dyn FnMut`
    /// keeps the trait dyn-compatible for the `&dyn CommLayer` blanket.
    fn compute_with(&self, d: VDur, f: &mut dyn FnMut()) {
        f();
        self.compute(d);
    }
    /// Barrier (plain in both layers).
    fn barrier(&self);
    /// Elementwise sum allreduce (plain in both layers, per §IV).
    fn allreduce_sum(&self, data: &[f64]) -> Vec<f64>;
    /// Max allreduce over i64 (plain).
    fn allreduce_max_i64(&self, data: &[i64]) -> Vec<i64>;
    /// Broadcast.
    fn bcast(&self, buf: &mut Vec<u8>, root: usize);
    /// Allgather of equal blocks.
    fn allgather(&self, send: &[u8]) -> Vec<u8>;
    /// Alltoall of equal blocks.
    fn alltoall(&self, send: &[u8], block: usize) -> Vec<u8>;
    /// Alltoallv with per-rank counts.
    fn alltoallv(&self, send: &[u8], scounts: &[usize], rcounts: &[usize]) -> Vec<u8>;
    /// Blocking send.
    fn send(&self, buf: &[u8], dst: usize, tag: Tag);
    /// Blocking receive from a specific rank/tag.
    fn recv(&self, src: usize, tag: Tag) -> Vec<u8>;
    /// Symmetric exchange.
    fn sendrecv(&self, sendbuf: &[u8], dst: usize, src: usize, tag: Tag) -> Vec<u8>;
}

/// Baseline layer: plain MPI.
pub struct PlainLayer<'a, 'h> {
    comm: &'a Comm<'h>,
}

impl<'a, 'h> PlainLayer<'a, 'h> {
    /// Wrap a communicator.
    pub fn new(comm: &'a Comm<'h>) -> Self {
        PlainLayer { comm }
    }
}

impl CommLayer for PlainLayer<'_, '_> {
    fn rank(&self) -> usize {
        self.comm.rank()
    }
    fn size(&self) -> usize {
        self.comm.size()
    }
    fn compute(&self, d: VDur) {
        self.comm.compute(d);
    }
    fn compute_with(&self, d: VDur, f: &mut dyn FnMut()) {
        self.comm.compute_with(d, f);
    }
    fn barrier(&self) {
        self.comm.barrier();
    }
    fn allreduce_sum(&self, data: &[f64]) -> Vec<f64> {
        self.comm.allreduce(data, empi_mpi::ops::sum)
    }
    fn allreduce_max_i64(&self, data: &[i64]) -> Vec<i64> {
        self.comm.allreduce(data, empi_mpi::ops::max)
    }
    fn bcast(&self, buf: &mut Vec<u8>, root: usize) {
        self.comm.bcast(buf, root);
    }
    fn allgather(&self, send: &[u8]) -> Vec<u8> {
        self.comm.allgather(send)
    }
    fn alltoall(&self, send: &[u8], block: usize) -> Vec<u8> {
        self.comm.alltoall(send, block)
    }
    fn alltoallv(&self, send: &[u8], scounts: &[usize], rcounts: &[usize]) -> Vec<u8> {
        self.comm.alltoallv(send, scounts, rcounts)
    }
    fn send(&self, buf: &[u8], dst: usize, tag: Tag) {
        self.comm.send(buf, dst, tag);
    }
    fn recv(&self, src: usize, tag: Tag) -> Vec<u8> {
        self.comm.recv(Src::Is(src), TagSel::Is(tag)).1.to_vec()
    }
    fn sendrecv(&self, sendbuf: &[u8], dst: usize, src: usize, tag: Tag) -> Vec<u8> {
        self.comm
            .sendrecv(sendbuf, dst, tag, Src::Is(src), TagSel::Is(tag))
            .1
            .to_vec()
    }
}

/// Encrypted layer: AES-GCM on p2p and the four covered collectives.
pub struct SecureLayer<'a, 'h> {
    sc: SecureComm<'a, 'h>,
}

impl<'a, 'h> SecureLayer<'a, 'h> {
    /// Wrap a communicator with the given security configuration.
    pub fn new(comm: &'a Comm<'h>, cfg: SecurityConfig) -> Self {
        SecureLayer {
            sc: SecureComm::new(comm, cfg).expect("secure layer init"),
        }
    }
}

impl CommLayer for SecureLayer<'_, '_> {
    fn rank(&self) -> usize {
        self.sc.rank()
    }
    fn size(&self) -> usize {
        self.sc.size()
    }
    fn compute(&self, d: VDur) {
        self.sc.inner().compute(d);
    }
    fn compute_with(&self, d: VDur, f: &mut dyn FnMut()) {
        self.sc.inner().compute_with(d, f);
    }
    fn barrier(&self) {
        self.sc.barrier();
    }
    fn allreduce_sum(&self, data: &[f64]) -> Vec<f64> {
        self.sc.allreduce_plain(data, empi_mpi::ops::sum)
    }
    fn allreduce_max_i64(&self, data: &[i64]) -> Vec<i64> {
        self.sc.allreduce_plain(data, empi_mpi::ops::max)
    }
    fn bcast(&self, buf: &mut Vec<u8>, root: usize) {
        self.sc.bcast(buf, root).expect("encrypted bcast");
    }
    fn allgather(&self, send: &[u8]) -> Vec<u8> {
        self.sc.allgather(send).expect("encrypted allgather")
    }
    fn alltoall(&self, send: &[u8], block: usize) -> Vec<u8> {
        self.sc.alltoall(send, block).expect("encrypted alltoall")
    }
    fn alltoallv(&self, send: &[u8], scounts: &[usize], rcounts: &[usize]) -> Vec<u8> {
        self.sc
            .alltoallv(send, scounts, rcounts)
            .expect("encrypted alltoallv")
    }
    fn send(&self, buf: &[u8], dst: usize, tag: Tag) {
        self.sc.send(buf, dst, tag);
    }
    fn recv(&self, src: usize, tag: Tag) -> Vec<u8> {
        self.sc
            .recv(Src::Is(src), TagSel::Is(tag))
            .expect("encrypted recv")
            .1
    }
    fn sendrecv(&self, sendbuf: &[u8], dst: usize, src: usize, tag: Tag) -> Vec<u8> {
        self.sc
            .sendrecv(sendbuf, dst, tag, Src::Is(src), TagSel::Is(tag))
            .expect("encrypted sendrecv")
            .1
    }
}

/// Delegation so harnesses can pick a layer at runtime and hand the
/// kernels a `&&dyn CommLayer` (the kernels are generic over
/// `impl CommLayer`).
impl CommLayer for &dyn CommLayer {
    fn rank(&self) -> usize {
        (**self).rank()
    }
    fn size(&self) -> usize {
        (**self).size()
    }
    fn compute(&self, d: VDur) {
        (**self).compute(d)
    }
    fn compute_with(&self, d: VDur, f: &mut dyn FnMut()) {
        (**self).compute_with(d, f)
    }
    fn barrier(&self) {
        (**self).barrier()
    }
    fn allreduce_sum(&self, data: &[f64]) -> Vec<f64> {
        (**self).allreduce_sum(data)
    }
    fn allreduce_max_i64(&self, data: &[i64]) -> Vec<i64> {
        (**self).allreduce_max_i64(data)
    }
    fn bcast(&self, buf: &mut Vec<u8>, root: usize) {
        (**self).bcast(buf, root)
    }
    fn allgather(&self, send: &[u8]) -> Vec<u8> {
        (**self).allgather(send)
    }
    fn alltoall(&self, send: &[u8], block: usize) -> Vec<u8> {
        (**self).alltoall(send, block)
    }
    fn alltoallv(&self, send: &[u8], scounts: &[usize], rcounts: &[usize]) -> Vec<u8> {
        (**self).alltoallv(send, scounts, rcounts)
    }
    fn send(&self, buf: &[u8], dst: usize, tag: Tag) {
        (**self).send(buf, dst, tag)
    }
    fn recv(&self, src: usize, tag: Tag) -> Vec<u8> {
        (**self).recv(src, tag)
    }
    fn sendrecv(&self, sendbuf: &[u8], dst: usize, src: usize, tag: Tag) -> Vec<u8> {
        (**self).sendrecv(sendbuf, dst, src, tag)
    }
}

/// Typed helpers shared by the kernels.
pub mod bytes {
    /// f64 slice → bytes.
    pub fn f64s(xs: &[f64]) -> &[u8] {
        empi_mpi::as_bytes(xs)
    }
    /// bytes → f64 vec.
    pub fn to_f64s(b: &[u8]) -> Vec<f64> {
        empi_mpi::vec_from_bytes(b)
    }
    /// u32 slice → bytes.
    pub fn u32s(xs: &[u32]) -> &[u8] {
        empi_mpi::as_bytes(xs)
    }
    /// bytes → u32 vec.
    pub fn to_u32s(b: &[u8]) -> Vec<u32> {
        empi_mpi::vec_from_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use empi_aead::CryptoLibrary;
    use empi_mpi::World;
    use empi_netsim::NetModel;

    fn exercise(layer: &impl CommLayer) -> (Vec<f64>, Vec<u8>) {
        let r = layer.rank();
        let sums = layer.allreduce_sum(&[r as f64, 1.0]);
        let gathered = layer.allgather(&[r as u8]);
        layer.barrier();
        (sums, gathered)
    }

    #[test]
    fn plain_and_secure_layers_agree_functionally() {
        for secure in [false, true] {
            let w = World::flat(NetModel::instant(), 4);
            let out = w.run(|c| {
                if secure {
                    let l = SecureLayer::new(c, SecurityConfig::new(CryptoLibrary::Libsodium));
                    exercise(&l)
                } else {
                    let l = PlainLayer::new(c);
                    exercise(&l)
                }
            });
            for (sums, gathered) in out.results {
                assert_eq!(sums, vec![6.0, 4.0]);
                assert_eq!(gathered, vec![0, 1, 2, 3]);
            }
        }
    }

    #[test]
    fn secure_layer_costs_more_virtual_time() {
        let run = |secure: bool| {
            let w = World::flat(NetModel::ethernet_10g(), 4);
            w.run(|c| {
                let payload = vec![1u8; 64 << 10];
                if secure {
                    let l = SecureLayer::new(c, SecurityConfig::new(CryptoLibrary::CryptoPp));
                    for _ in 0..3 {
                        l.alltoall(&payload, (64 << 10) / 4);
                    }
                } else {
                    let l = PlainLayer::new(c);
                    for _ in 0..3 {
                        l.alltoall(&payload, (64 << 10) / 4);
                    }
                }
            })
            .end_time
        };
        let base = run(false);
        let enc = run(true);
        assert!(enc > base, "encrypted {enc} must exceed baseline {base}");
    }
}
