//! CG — conjugate gradient on a random sparse symmetric positive-definite
//! matrix (the NAS CG kernel's structure).
//!
//! Communication per CG iteration, as in NAS CG:
//! * an **allgather** to assemble the distributed direction vector `p`
//!   before the sparse mat-vec (NAS uses a transpose exchange over a 2-D
//!   processor grid; at our scales a rank-row allgather moves the same
//!   bytes with the same collective character), and
//! * two scalar **allreduce** dot products (`p·q`, `r·r`).
//!
//! The matrix is generated deterministically on every rank from the NAS
//! LCG, so no setup communication is needed. Verification solves
//! `A z = 1` and checks the true residual.

use crate::layer::bytes::{f64s, to_f64s};
use crate::{Class, CommLayer, ComputeModel, Kernel, KernelReport, NasRandom};

/// CG problem parameters.
#[derive(Debug, Clone, Copy)]
pub struct CgParams {
    /// Matrix dimension.
    pub n: usize,
    /// Off-diagonal non-zeros per row (before symmetrization).
    pub nnz_per_row: usize,
    /// Outer iterations.
    pub outer: usize,
    /// CG iterations per outer step.
    pub inner: usize,
}

impl CgParams {
    /// Parameters for a class.
    pub fn for_class(class: Class) -> Self {
        match class {
            Class::S => CgParams {
                n: 256,
                nnz_per_row: 6,
                outer: 2,
                inner: 25,
            },
            Class::MiniC => CgParams {
                n: 229376,
                nnz_per_row: 11,
                outer: 4,
                inner: 25,
            },
        }
    }
}

/// Local slice of the sparse matrix: CSR rows `lo..hi`.
struct LocalMatrix {
    lo: usize,
    hi: usize,
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
}

/// Global entry list shared by all simulated ranks (they live in one
/// process): the deterministic stream is generated once per (n, nnz)
/// and each rank filters its rows, keeping setup cost linear instead of
/// O(ranks · n · nnz).
fn global_entries(params: &CgParams) -> std::sync::Arc<Vec<(u32, u32, f64)>> {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<HashMap<(usize, usize), Arc<Vec<(u32, u32, f64)>>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = cache.lock().unwrap();
    Arc::clone(
        guard
            .entry((params.n, params.nnz_per_row))
            .or_insert_with(|| {
                let mut rng = NasRandom::new(314159265);
                let mut v = Vec::with_capacity(params.n * params.nnz_per_row);
                for i in 0..params.n {
                    for _ in 0..params.nnz_per_row {
                        let j = rng.next_u32(params.n as u32);
                        let val = rng.next_f64() - 0.5;
                        v.push((i as u32, j, val));
                    }
                }
                Arc::new(v)
            }),
    )
}

/// Generate the global symmetric matrix deterministically and keep rows
/// `lo..hi`. The matrix is `D + S + Sᵀ` with random sparse `S` and a
/// diagonal that strictly dominates each row (⇒ SPD).
fn generate(params: &CgParams, lo: usize, hi: usize) -> LocalMatrix {
    let n = params.n;
    let raw = global_entries(params);
    let mut entries: Vec<Vec<(u32, f64)>> = vec![Vec::new(); hi - lo];
    let mut row_abs_sum = vec![0.0f64; n];
    for &(i, j, v) in raw.iter() {
        let (i, j) = (i as usize, j as usize);
        if i == j {
            continue;
        }
        row_abs_sum[i] += v.abs();
        row_abs_sum[j] += v.abs();
        if (lo..hi).contains(&i) {
            entries[i - lo].push((j as u32, v));
        }
        if (lo..hi).contains(&j) {
            entries[j - lo].push((i as u32, v));
        }
    }
    let mut row_ptr = Vec::with_capacity(hi - lo + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    row_ptr.push(0);
    for (off, row) in entries.into_iter().enumerate() {
        let i = lo + off;
        // Diagonal first: strictly dominant.
        cols.push(i as u32);
        vals.push(row_abs_sum[i] + 1.0);
        for (j, v) in row {
            cols.push(j);
            vals.push(v);
        }
        row_ptr.push(cols.len());
    }
    LocalMatrix {
        lo,
        hi,
        row_ptr,
        cols,
        vals,
    }
}

impl LocalMatrix {
    /// `y_local = A_local · x_full`.
    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        for r in 0..(self.hi - self.lo) {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            y[r] = acc;
        }
    }

    fn nnz(&self) -> usize {
        self.cols.len()
    }
}

/// Run the CG kernel.
pub fn run(layer: &impl CommLayer, class: Class) -> KernelReport {
    let params = CgParams::for_class(class);
    let model = ComputeModel::calibrated(Kernel::CG);
    let n = params.n;
    let size = layer.size();
    let rank = layer.rank();
    assert_eq!(n % size, 0, "CG size must divide n");
    let local_n = n / size;
    let (lo, hi) = (rank * local_n, (rank + 1) * local_n);

    let a = generate(&params, lo, hi);
    let mut work_units = 0u64;

    let b = vec![1.0f64; local_n];
    let mut z = vec![0.0f64; local_n];
    let mut checksum = 0.0;

    for _ in 0..params.outer {
        // Solve A z = b from scratch.
        z.iter_mut().for_each(|v| *v = 0.0);
        let mut r = b.clone();
        let mut p = r.clone();
        let mut rho = layer.allreduce_sum(&[dot(&r, &r)])[0];

        for _ in 0..params.inner {
            // Assemble the full direction vector.
            let p_full = to_f64s(&layer.allgather(f64s(&p)));
            let mut q = vec![0.0f64; local_n];
            let units = (2 * a.nnz() + 10 * local_n) as u64;
            model.charge_with(layer, units, &mut || a.matvec(&p_full, &mut q));
            work_units += units;

            let pq = layer.allreduce_sum(&[dot(&p, &q)])[0];
            let alpha = rho / pq;
            for i in 0..local_n {
                z[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            let rho_new = layer.allreduce_sum(&[dot(&r, &r)])[0];
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..local_n {
                p[i] = r[i] + beta * p[i];
            }
        }
        checksum += layer.allreduce_sum(&[dot(&z, &z)])[0];
    }

    // True-residual verification: ‖b − A z‖ ≪ ‖b‖.
    let z_full = to_f64s(&layer.allgather(f64s(&z)));
    let mut az = vec![0.0f64; local_n];
    a.matvec(&z_full, &mut az);
    let local_res: f64 = az
        .iter()
        .zip(b.iter())
        .map(|(a, b)| (b - a) * (b - a))
        .sum();
    let res = layer.allreduce_sum(&[local_res])[0].sqrt();
    let bnorm = (n as f64).sqrt();

    KernelReport {
        verified: res < 1e-6 * bnorm,
        checksum,
        work_units,
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{PlainLayer, SecureLayer};
    use empi_core::SecurityConfig;
    use empi_mpi::World;
    use empi_netsim::NetModel;

    #[test]
    fn cg_converges_and_is_rank_count_invariant() {
        let mut checksums = Vec::new();
        for ranks in [1usize, 2, 4] {
            let w = World::flat(NetModel::instant(), ranks);
            let out = w.run(|c| run(&PlainLayer::new(c), Class::S));
            for rep in &out.results {
                assert!(rep.verified, "CG residual check failed at {ranks} ranks");
            }
            checksums.push(out.results[0].checksum);
        }
        // The solution must not depend on the partitioning.
        for c in &checksums[1..] {
            assert!(
                (c - checksums[0]).abs() < 1e-6 * checksums[0].abs(),
                "checksums differ across rank counts: {checksums:?}"
            );
        }
    }

    #[test]
    fn cg_identical_under_encryption() {
        let w = World::flat(NetModel::instant(), 4);
        let plain = w.run(|c| run(&PlainLayer::new(c), Class::S));
        let enc = w.run(|c| {
            let l = SecureLayer::new(c, SecurityConfig::new(empi_aead::CryptoLibrary::BoringSsl));
            run(&l, Class::S)
        });
        assert!(enc.results[0].verified);
        assert_eq!(plain.results[0].checksum, enc.results[0].checksum);
        // Encryption must cost virtual time.
        assert!(enc.end_time > plain.end_time);
    }
}
