//! Property-based tests for the fabric model and curves.

use empi_netsim::{Curve, Fabric, NetModel, Topology, VTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transmit_never_time_travels(
        sends in proptest::collection::vec(
            (0usize..4, 0usize..4, 1usize..3_000_000, 0u64..1_000_000),
            1..40,
        ),
    ) {
        // Arbitrary message sequences with nondecreasing start times:
        // every arrival is at/after start + (latency if inter-node).
        for model in [NetModel::ethernet_10g(), NetModel::infiniband_40g()] {
            let latency = model.latency;
            let mut f = Fabric::new(model, Topology::block(4, 2));
            let mut t = 0u64;
            for &(src, dst, bytes, dt) in &sends {
                t += dt;
                let arrive = f.transmit(src, dst, bytes, VTime(t));
                prop_assert!(arrive.as_nanos() >= t);
                if f.topology().node_of(src) != f.topology().node_of(dst) {
                    prop_assert!(arrive.as_nanos() >= t + latency.as_nanos());
                }
            }
        }
    }

    #[test]
    fn nic_serialization_is_monotone(
        sizes in proptest::collection::vec(1usize..2_000_000, 2..30),
    ) {
        // Same flow, same start time: arrivals strictly increase.
        let mut f = Fabric::new(NetModel::ethernet_10g(), Topology::one_per_node(2));
        let mut prev = VTime::ZERO;
        for &s in &sizes {
            let a = f.transmit(0, 1, s, VTime::ZERO);
            prop_assert!(a > prev, "arrivals must be strictly ordered");
            prev = a;
        }
    }

    #[test]
    fn aggregate_rate_never_exceeds_wire(
        n_msgs in 4usize..40,
        size in (16usize << 10)..(2 << 20),
    ) {
        // Blasting the same path cannot beat the per-size wire rate.
        let model = NetModel::infiniband_40g();
        let per_msg_wire = model.wire_time_ns(size);
        let mut f = Fabric::new(model, Topology::one_per_node(2));
        let mut last = VTime::ZERO;
        for _ in 0..n_msgs {
            last = f.transmit(0, 1, size, VTime::ZERO);
        }
        prop_assert!(
            last.as_nanos() >= (n_msgs as u64) * per_msg_wire,
            "{n_msgs} x {size}B finished at {last} but wire needs {}",
            n_msgs as u64 * per_msg_wire
        );
    }

    #[test]
    fn curve_interpolation_brackets_anchors(
        lo_val in 0.01f64..10.0,
        hi_val in 10.0f64..10_000.0,
        size in 1usize..100_000,
    ) {
        let c = Curve::new(&[(16, lo_val), (65_536, hi_val)]);
        let v = c.value_at(size);
        prop_assert!(v >= lo_val - 1e-9 && v <= hi_val + 1e-9);
    }

    #[test]
    fn pp_overhead_is_consistent_for_all_sizes(size in 1usize..4_000_000) {
        // The decomposition o + L + wire + o must rebuild the curve.
        for model in [NetModel::ethernet_10g(), NetModel::infiniband_40g()] {
            let total = model.pp_curve.time_ns(size);
            let rebuilt = 2 * model.pp_overhead_ns(size)
                + model.latency.as_nanos()
                + model.wire_time_ns(size);
            let diff = total.abs_diff(rebuilt);
            prop_assert!(diff <= 2, "{}: {total} vs {rebuilt}", model.name);
        }
    }
}
