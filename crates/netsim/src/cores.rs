//! Per-rank crypto worker cores: the multi-core resource model behind
//! the pipelined (CryptMPI-style) send/receive path.
//!
//! The engine gives every rank exactly one virtual core — its clock —
//! which is the paper's regime: the sealing of a whole message is
//! charged to the rank before the first byte can leave. CryptMPI's
//! insight is that a rank can *delegate* chunk-sized seal/open jobs to
//! a pool of additional cores whose virtual time advances concurrently
//! with the NIC. A [`CorePool`] is that pool, modelled exactly like a
//! [`crate::fabric`] `NicPort`: each worker is a busy-until timeline,
//! and a job submitted at `t` starts on the earliest-free worker at
//! `max(t, worker_free)`. The rank's own clock never moves; callers
//! combine the returned per-job completion times with the fabric's
//! transfer times to decide when results are usable.

use crate::time::{VDur, VTime};

/// When and where one delegated job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreSlot {
    /// Index of the worker that ran the job (trace lane id).
    pub worker: usize,
    /// Virtual time the job began executing.
    pub start: VTime,
    /// Virtual time the job finished.
    pub end: VTime,
}

/// A pool of simulated crypto worker cores owned by one rank.
///
/// Purely a virtual-time resource: no threads are spawned. The caller
/// performs the real computation on its own OS thread (execution is
/// exclusive anyway) and uses the pool only to decide *when* each
/// result becomes available.
#[derive(Debug, Clone)]
pub struct CorePool {
    /// Busy-until timeline per worker (ns).
    free_at: Vec<u64>,
    /// Per-worker slowdown factor (fault injection: a degraded core
    /// runs every job `slowdown[w]`× longer). Empty = all healthy.
    slowdown: Vec<u32>,
}

impl CorePool {
    /// A pool of `workers` cores, all idle at t=0.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "core pool needs at least one worker");
        CorePool {
            free_at: vec![0; workers],
            slowdown: Vec::new(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.free_at.len()
    }

    /// Schedule a job of duration `dur` submitted at `submit` on the
    /// earliest-free worker (ties go to the lowest index, so schedules
    /// are deterministic).
    pub fn schedule(&mut self, submit: VTime, dur: VDur) -> CoreSlot {
        let n = self.free_at.len();
        self.place(submit, dur, n)
    }

    /// Mark `worker` as degraded: every job it runs takes `factor`×
    /// longer. Deterministic fault injection uses this to model slow
    /// or thermally throttled crypto cores; the scheduler then picks
    /// workers by earliest *completion*, so healthy cores absorb load
    /// first.
    pub fn degrade(&mut self, worker: usize, factor: u32) {
        assert!(factor >= 1, "slowdown factor must be >= 1");
        if worker >= self.free_at.len() {
            return;
        }
        if self.slowdown.len() < self.free_at.len() {
            self.slowdown.resize(self.free_at.len(), 1);
        }
        self.slowdown[worker] = self.slowdown[worker].max(factor);
    }

    /// This worker's slowdown factor (1 = healthy).
    pub fn slowdown_of(&self, worker: usize) -> u32 {
        self.slowdown.get(worker).copied().unwrap_or(1)
    }

    /// Pick a worker among the first `limit` and book the job. With no
    /// degraded workers this is the historical earliest-free choice;
    /// with slowdowns in play it minimizes completion time instead
    /// (still deterministic: ties go to the lowest index).
    fn place(&mut self, submit: VTime, dur: VDur, limit: usize) -> CoreSlot {
        let limit = limit.clamp(1, self.free_at.len());
        let (worker, start, end) = if self.slowdown.is_empty() {
            let (worker, free) = self.free_at[..limit]
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(i, f)| (f, i))
                .expect("non-empty pool");
            let start = submit.as_nanos().max(free);
            (worker, start, start + dur.as_nanos())
        } else {
            let (worker, start, end) = (0..limit)
                .map(|w| {
                    let start = submit.as_nanos().max(self.free_at[w]);
                    let slow = self.slowdown.get(w).copied().unwrap_or(1) as u64;
                    (w, start, start + dur.as_nanos() * slow)
                })
                .min_by_key(|&(w, _, end)| (end, w))
                .expect("non-empty pool");
            (worker, start, end)
        };
        self.free_at[worker] = end;
        CoreSlot {
            worker,
            start: VTime(start),
            end: VTime(end),
        }
    }

    /// Earliest time a newly submitted job could start.
    pub fn earliest_free(&self) -> VTime {
        VTime(self.free_at.iter().copied().min().unwrap_or(0))
    }

    /// Grow the pool to at least `workers` timelines (new workers idle
    /// from t=0). Never shrinks: a rank's physical cores don't vanish
    /// when a communicator configured for fewer workers uses the pool.
    pub fn ensure_workers(&mut self, workers: usize) {
        assert!(workers > 0, "core pool needs at least one worker");
        if workers > self.free_at.len() {
            self.free_at.resize(workers, 0);
            if !self.slowdown.is_empty() {
                self.slowdown.resize(self.free_at.len(), 1);
            }
        }
    }

    /// Like [`CorePool::schedule`], but restricted to the first
    /// `limit` workers. This is how several communicators on one rank
    /// share a single physical pool: each schedules onto the same
    /// busy-until timelines (so their jobs serialize where they
    /// contend) while respecting its own configured worker count.
    pub fn schedule_limited(&mut self, submit: VTime, dur: VDur, limit: usize) -> CoreSlot {
        self.place(submit, dur, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_worker_serializes() {
        let mut p = CorePool::new(1);
        let a = p.schedule(VTime(0), VDur(100));
        let b = p.schedule(VTime(0), VDur(100));
        assert_eq!((a.start, a.end), (VTime(0), VTime(100)));
        assert_eq!((b.start, b.end), (VTime(100), VTime(200)));
        assert_eq!(a.worker, b.worker);
    }

    #[test]
    fn workers_run_concurrently() {
        let mut p = CorePool::new(4);
        let slots: Vec<_> = (0..4).map(|_| p.schedule(VTime(0), VDur(100))).collect();
        // All four start immediately on distinct workers.
        for s in &slots {
            assert_eq!(s.start, VTime(0));
            assert_eq!(s.end, VTime(100));
        }
        let mut workers: Vec<_> = slots.iter().map(|s| s.worker).collect();
        workers.sort_unstable();
        assert_eq!(workers, vec![0, 1, 2, 3]);
        // The fifth job queues behind the earliest finisher.
        let fifth = p.schedule(VTime(0), VDur(50));
        assert_eq!(fifth.start, VTime(100));
    }

    #[test]
    fn submit_time_is_respected() {
        let mut p = CorePool::new(2);
        p.schedule(VTime(0), VDur(1000));
        // Worker 1 is idle, so a late submission starts at submit time.
        let s = p.schedule(VTime(400), VDur(10));
        assert_eq!(s.worker, 1);
        assert_eq!(s.start, VTime(400));
    }

    #[test]
    fn chunk_pipeline_shape() {
        // 8 equal chunks on 2 workers: completion times advance in
        // pairs — exactly the overlap the pipelined send exploits.
        let mut p = CorePool::new(2);
        let ends: Vec<u64> = (0..8)
            .map(|_| p.schedule(VTime(0), VDur(100)).end.as_nanos())
            .collect();
        assert_eq!(ends, vec![100, 100, 200, 200, 300, 300, 400, 400]);
        assert_eq!(p.earliest_free(), VTime(400));
    }

    #[test]
    fn ensure_workers_grows_but_never_shrinks() {
        let mut p = CorePool::new(2);
        p.schedule(VTime(0), VDur(100));
        p.ensure_workers(4);
        assert_eq!(p.workers(), 4);
        // Existing busy-until state survives the growth.
        let s = p.schedule(VTime(0), VDur(10));
        assert_eq!(s.start, VTime(0));
        p.ensure_workers(1);
        assert_eq!(p.workers(), 4);
    }

    #[test]
    fn degraded_worker_stretches_jobs_and_sheds_load() {
        let mut p = CorePool::new(2);
        p.degrade(1, 4);
        assert_eq!(p.slowdown_of(0), 1);
        assert_eq!(p.slowdown_of(1), 4);
        // First job lands on the healthy worker 0.
        let a = p.schedule(VTime(0), VDur(100));
        assert_eq!((a.worker, a.end), (0, VTime(100)));
        // Second job: worker 1 is free but 4× slower (ends at 400),
        // queueing behind worker 0 ends at 200 — the scheduler picks
        // the earliest completion.
        let b = p.schedule(VTime(0), VDur(100));
        assert_eq!((b.worker, b.start, b.end), (0, VTime(100), VTime(200)));
        // A short job fits on the degraded worker sooner than queueing.
        let c = p.schedule(VTime(0), VDur(10));
        assert_eq!((c.worker, c.end), (1, VTime(40)));
        // Growth keeps new workers healthy.
        p.ensure_workers(3);
        assert_eq!(p.slowdown_of(2), 1);
    }

    #[test]
    fn schedule_limited_shares_timelines_across_limits() {
        // A communicator limited to 2 workers and one limited to 4
        // contend on the same first two timelines.
        let mut p = CorePool::new(4);
        let a = p.schedule_limited(VTime(0), VDur(100), 2);
        let b = p.schedule_limited(VTime(0), VDur(100), 2);
        assert_eq!((a.worker, b.worker), (0, 1));
        // The 4-worker view sees workers 0/1 busy and picks worker 2.
        let c = p.schedule_limited(VTime(0), VDur(100), 4);
        assert_eq!(c.worker, 2);
        // The 2-worker view must queue behind its own lanes.
        let d = p.schedule_limited(VTime(0), VDur(50), 2);
        assert_eq!(d.start, VTime(100));
        // A limit beyond the pool clamps to the pool size.
        let e = p.schedule_limited(VTime(0), VDur(10), 99);
        assert_eq!(e.worker, 3);
    }
}
