//! Network fabric: the calibrated timing model for message transport.
//!
//! A [`NetModel`] holds the *parameters* (curves calibrated to the
//! paper's baseline measurements, DESIGN.md §5); a [`Fabric`] holds the
//! *state*: per-NIC busy timelines that make concurrent flows share the
//! wire, per-message rate floors, and the flow-contention penalty that
//! reproduces InfiniBand's 8-pair throttle (Fig. 11).
//!
//! The decomposition of a one-way blocking transfer of `s` bytes:
//!
//! ```text
//! T(s) = o_send(s) + L + s/B(s) + o_recv(s)
//! ```
//!
//! where `L` (latency) and `s/B(s)` (wire occupancy) live here, and the
//! host overheads `o_*` are derived from the calibrated ping-pong curve:
//! `o_send = o_recv = (T_pp(s) − L − s/B(s)) / 2`. The wire occupancy is
//! the only serialized resource, so multi-flow sharing and saturation
//! emerge naturally.

use empi_trace::Tracer;

use crate::curve::Curve;
use crate::time::{VDur, VTime};
use crate::topology::Topology;

/// Direction-tagged NIC timeline with a recent-flow tracker.
#[derive(Debug, Clone, Default)]
struct NicPort {
    next_free: u64,
    /// (remote rank, last use ns) of recently active flows. Flows are
    /// per rank pair, not per node: eight sender processes sharing one
    /// NIC are eight flows (the OSU multi-pair situation).
    flows: Vec<(usize, u64)>,
}

/// How long a flow counts as "active" for contention purposes.
const FLOW_WINDOW_NS: u64 = 200_000; // 200 µs

impl NicPort {
    /// Record use of the flow to `peer` at `now`, pruning stale flows,
    /// and return the number of concurrently active flows.
    fn touch_flow(&mut self, peer: usize, now: u64) -> usize {
        self.flows
            .retain(|&(_, t)| now.saturating_sub(t) <= FLOW_WINDOW_NS);
        match self.flows.iter_mut().find(|(p, _)| *p == peer) {
            Some(entry) => entry.1 = now,
            None => self.flows.push((peer, now)),
        }
        self.flows.len()
    }
}

/// Calibrated parameters of one interconnect + MPI-stack combination.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Human-readable name ("10GbE/MPICH", "40Gb IB QDR/MVAPICH2").
    pub name: &'static str,
    /// One-way wire latency between nodes.
    pub latency: VDur,
    /// Effective wire bandwidth by message size (MB/s).
    pub bw_curve: Curve,
    /// Baseline blocking ping-pong *uni-directional throughput* by size
    /// (MB/s) — Table I / Table V and Figs. 3/10 of the paper.
    pub pp_curve: Curve,
    /// Baseline single-pair *streaming* bandwidth by size (MB/s) — the
    /// per-message host occupancy in windowed non-blocking mode.
    pub stream_curve: Curve,
    /// Eager→rendezvous protocol switch (bytes).
    pub eager_threshold: usize,
    /// Minimum per-message NIC occupancy (ns): the message-rate cap.
    pub min_gap_ns: u64,
    /// Multiplier on `min_gap_ns` as a function of concurrently active
    /// flows on a port: `(flow_count, factor)` pairs, linearly
    /// interpolated. Models end-point contention (IB 8-pair throttle).
    pub contention: Vec<(usize, f64)>,
    /// Intra-node (shared-memory) one-way latency.
    pub intra_latency: VDur,
    /// Intra-node copy bandwidth (MB/s).
    pub intra_bw: f64,
    /// Fixed per-message host overhead for intra-node transfers (ns).
    pub intra_overhead_ns: u64,
}

impl NetModel {
    /// 10 Gbps Ethernet under MPICH-3.2.1 over TCP, calibrated to the
    /// paper's unencrypted baselines (Table I, Figs. 3–6, Tables II–IV).
    pub fn ethernet_10g() -> Self {
        NetModel {
            name: "10GbE/MPICH-3.2.1",
            latency: VDur::from_micros_f64(6.0),
            bw_curve: Curve::new(&[
                (64, 400.0),
                (1 << 10, 900.0),
                (16 << 10, 1180.0),
                (2 << 20, 1180.0),
            ]),
            pp_curve: Curve::new(&[
                (1, 0.050),
                (16, 0.83),
                (256, 7.01),
                (1 << 10, 17.03),
                (4 << 10, 60.0),
                (16 << 10, 200.0),
                (64 << 10, 480.0),
                (256 << 10, 800.0),
                (1 << 20, 980.0),
                (2 << 20, 1038.0),
                (4 << 20, 1060.0),
            ]),
            stream_curve: Curve::new(&[
                (1, 0.33),
                (16, 5.3),
                (256, 80.0),
                (1 << 10, 240.0),
                (4 << 10, 420.0),
                (16 << 10, 565.0),
                (64 << 10, 800.0),
                (256 << 10, 900.0),
                (1 << 20, 940.0),
                (2 << 20, 950.0),
                (4 << 20, 955.0),
            ]),
            eager_threshold: 64 << 10,
            min_gap_ns: 300,
            contention: vec![(1, 1.0), (16, 1.0)],
            intra_latency: VDur::from_micros_f64(0.6),
            intra_bw: 4000.0,
            intra_overhead_ns: 300,
        }
    }

    /// 40 Gbps InfiniBand QDR under MVAPICH2-2.3, calibrated to the
    /// paper's unencrypted baselines (Table V, Figs. 10–13, Tables
    /// VI–VIII), including the multi-pair small-message throttle.
    pub fn infiniband_40g() -> Self {
        NetModel {
            name: "40Gb-IB-QDR/MVAPICH2-2.3",
            latency: VDur::from_micros_f64(1.3),
            bw_curve: Curve::new(&[
                (64, 800.0),
                (1 << 10, 2200.0),
                (16 << 10, 3250.0),
                (256 << 10, 3250.0),
                (2 << 20, 3150.0),
            ]),
            pp_curve: Curve::new(&[
                (1, 0.57),
                (16, 9.61),
                (256, 82.34),
                (1 << 10, 272.84),
                (4 << 10, 700.0),
                (16 << 10, 1200.0),
                (64 << 10, 2000.0),
                (256 << 10, 2600.0),
                (1 << 20, 2900.0),
                (2 << 20, 3023.0),
                (4 << 20, 3060.0),
            ]),
            stream_curve: Curve::new(&[
                (1, 0.70),
                (16, 11.0),
                (256, 170.0),
                (1 << 10, 600.0),
                (4 << 10, 1400.0),
                (16 << 10, 2600.0),
                (64 << 10, 2900.0),
                (256 << 10, 3000.0),
                (1 << 20, 3050.0),
                (2 << 20, 3080.0),
                (4 << 20, 3080.0),
            ]),
            eager_threshold: 12 << 10,
            min_gap_ns: 350,
            contention: vec![(1, 1.0), (4, 1.0), (8, 1.8), (16, 2.2)],
            intra_latency: VDur::from_micros_f64(0.4),
            intra_bw: 6000.0,
            intra_overhead_ns: 200,
        }
    }

    /// Zero-cost fabric for functional tests: every transfer is
    /// instantaneous (1 ns), no contention.
    pub fn instant() -> Self {
        NetModel {
            name: "instant",
            latency: VDur(1),
            bw_curve: Curve::new(&[(1, 1e9)]),
            pp_curve: Curve::new(&[(1, 1e9)]),
            stream_curve: Curve::new(&[(1, 1e9)]),
            eager_threshold: usize::MAX,
            min_gap_ns: 0,
            contention: vec![(1, 1.0)],
            intra_latency: VDur(1),
            intra_bw: 1e9,
            intra_overhead_ns: 0,
        }
    }

    /// Wire occupancy of an `s`-byte message (ns).
    pub fn wire_time_ns(&self, s: usize) -> u64 {
        self.bw_curve.time_ns(s)
    }

    /// The model's **lookahead**: the minimum latency any message can
    /// experience on any link — `min(inter-node, intra-node)` one-way
    /// latency, and at least 1 ns. A conservative parallel scheduler
    /// may execute two ranks concurrently whenever their clocks are
    /// within this bound, because neither can affect the other sooner;
    /// equivalently, a message sent at LBTS `t` arrives no earlier
    /// than `t + min_latency()`.
    pub fn min_latency(&self) -> VDur {
        VDur(self.latency.0.min(self.intra_latency.0).max(1))
    }

    /// Per-side host overhead of a blocking transfer, from the ping-pong
    /// decomposition.
    pub fn pp_overhead_ns(&self, s: usize) -> u64 {
        let total = self.pp_curve.time_ns(s.max(1));
        let inner = self.latency.as_nanos() + self.wire_time_ns(s);
        total.saturating_sub(inner) / 2
    }

    /// Per-message host occupancy in pipelined (windowed non-blocking)
    /// mode.
    pub fn stream_overhead_ns(&self, s: usize) -> u64 {
        self.stream_curve.time_ns(s.max(1))
    }

    /// Contention factor for `flows` concurrently active flows.
    fn contention_factor(&self, flows: usize) -> f64 {
        let pts = &self.contention;
        if flows <= pts[0].0 {
            return pts[0].1;
        }
        for w in pts.windows(2) {
            if flows <= w[1].0 {
                let t = (flows - w[0].0) as f64 / (w[1].0 - w[0].0) as f64;
                return w[0].1 + t * (w[1].1 - w[0].1);
            }
        }
        pts[pts.len() - 1].1
    }
}

/// Transport statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct FabricStats {
    /// Inter-node messages carried.
    pub messages: u64,
    /// Inter-node bytes carried.
    pub bytes: u64,
    /// Intra-node messages carried.
    pub local_messages: u64,
}

/// Stateful fabric: model + per-node NIC timelines.
///
/// The MPI layer serializes access (it already holds its own lock and the
/// engine guarantees single-threaded execution).
pub struct Fabric {
    model: NetModel,
    topology: Topology,
    tx: Vec<NicPort>,
    rx: Vec<NicPort>,
    stats: FabricStats,
    tracer: Option<Tracer>,
}

impl Fabric {
    /// Build a fabric for `topology` with the given model.
    pub fn new(model: NetModel, topology: Topology) -> Self {
        let n = topology.n_nodes();
        Fabric {
            model,
            topology,
            tx: vec![NicPort::default(); n],
            rx: vec![NicPort::default(); n],
            stats: FabricStats::default(),
            tracer: None,
        }
    }

    /// Install a trace collector: every transfer is recorded with its
    /// virtual start/arrival (tagged with the sender's current op/phase
    /// labels), and NIC port busy intervals become trace lanes.
    pub fn set_tracer(&mut self, t: Tracer) {
        self.tracer = Some(t);
    }

    /// The model parameters.
    pub fn model(&self) -> &NetModel {
        &self.model
    }

    /// The rank placement.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Transport statistics so far.
    pub fn stats(&self) -> FabricStats {
        self.stats
    }

    /// The fabric's conservative lookahead (see
    /// [`NetModel::min_latency`]): no transmit completes in less than
    /// this, whatever the link or load.
    pub fn lookahead(&self) -> VDur {
        self.model.min_latency()
    }

    /// Inject a `wire_bytes`-byte message from `src_rank` to `dst_rank`
    /// at virtual time `start`; returns the arrival time of the last
    /// byte at the destination.
    ///
    /// Host-side overheads are *not* included — the MPI layer charges
    /// those to the sending/receiving ranks' virtual cores.
    pub fn transmit(
        &mut self,
        src_rank: usize,
        dst_rank: usize,
        wire_bytes: usize,
        start: VTime,
    ) -> VTime {
        let src = self.topology.node_of(src_rank);
        let dst = self.topology.node_of(dst_rank);
        if src == dst {
            self.stats.local_messages += 1;
            let arrive = start
                + self.model.intra_latency
                + VDur((wire_bytes as f64 / (self.model.intra_bw * 1e6) * 1e9) as u64);
            if let Some(tracer) = &self.tracer {
                tracer.transfer(
                    src_rank,
                    dst_rank,
                    wire_bytes,
                    start.as_nanos(),
                    arrive.as_nanos(),
                    true,
                );
            }
            return arrive;
        }
        self.stats.messages += 1;
        self.stats.bytes += wire_bytes as u64;

        let wire = self.model.wire_time_ns(wire_bytes);
        let t = start.as_nanos();

        // Sender NIC: serialize departures.
        let tx = &mut self.tx[src];
        let tx_flows = tx.touch_flow(dst_rank, t);
        let tx_gap = wire
            .max((self.model.min_gap_ns as f64 * self.model.contention_factor(tx_flows)) as u64);
        let tx_start = t.max(tx.next_free);
        tx.next_free = tx_start + tx_gap;

        // Receiver NIC: serialize arrivals.
        let rx = &mut self.rx[dst];
        let rx_flows = rx.touch_flow(src_rank, tx_start);
        let rx_gap = wire
            .max((self.model.min_gap_ns as f64 * self.model.contention_factor(rx_flows)) as u64);
        let earliest = tx_start + self.model.latency.as_nanos() + wire;
        let arrive = earliest.max(rx.next_free + wire);
        rx.next_free = (arrive - wire) + rx_gap;

        if let Some(tracer) = &self.tracer {
            // The wire span starts when the sender NIC begins serving
            // the message, not at submit: back-to-back chunk frames
            // queue behind each other, and that queueing is wait time,
            // not fabric occupancy.
            tracer.transfer(src_rank, dst_rank, wire_bytes, tx_start, arrive, false);
            tracer.nic_busy(src, 0, tx_start, tx_start + tx_gap);
            tracer.nic_busy(dst, 1, arrive - wire, (arrive - wire) + rx_gap);
        }

        VTime(arrive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eth_fabric(nodes: usize) -> Fabric {
        Fabric::new(NetModel::ethernet_10g(), Topology::one_per_node(nodes))
    }

    #[test]
    fn single_message_time_is_latency_plus_wire() {
        let mut f = eth_fabric(2);
        let arrive = f.transmit(0, 1, 2 << 20, VTime::ZERO);
        let expect = f.model.latency.as_nanos() + f.model.wire_time_ns(2 << 20);
        assert_eq!(arrive.as_nanos(), expect);
    }

    #[test]
    fn back_to_back_messages_serialize_on_the_wire() {
        let mut f = eth_fabric(2);
        let s = 1 << 20;
        let a1 = f.transmit(0, 1, s, VTime::ZERO);
        let a2 = f.transmit(0, 1, s, VTime::ZERO);
        let wire = f.model.wire_time_ns(s);
        assert_eq!(a2.as_nanos() - a1.as_nanos(), wire, "spacing = wire time");
    }

    #[test]
    fn concurrent_flows_share_the_receiver_nic() {
        // Two senders to one receiver: aggregate arrival rate is wire-
        // limited, so the second arrival is a full wire-time later.
        let mut f = Fabric::new(NetModel::ethernet_10g(), Topology::one_per_node(3));
        let s = 1 << 20;
        let a1 = f.transmit(0, 2, s, VTime::ZERO);
        let a2 = f.transmit(1, 2, s, VTime::ZERO);
        let wire = f.model.wire_time_ns(s);
        assert!(a2.as_nanos() >= a1.as_nanos() + wire);
    }

    #[test]
    fn intra_node_is_fast_and_uncontended() {
        let model = NetModel::ethernet_10g();
        let mut f = Fabric::new(model, Topology::block(4, 2));
        // Ranks 0,1 on node 0.
        let a = f.transmit(0, 1, 1024, VTime::ZERO);
        assert!(a.as_nanos() < 2_000, "intra-node transfer should be ~µs");
        assert_eq!(f.stats().local_messages, 1);
        assert_eq!(f.stats().messages, 0);
    }

    #[test]
    fn message_rate_floor_applies_to_tiny_messages() {
        let mut f = eth_fabric(2);
        let a1 = f.transmit(0, 1, 1, VTime::ZERO);
        let a2 = f.transmit(0, 1, 1, VTime::ZERO);
        assert!(
            a2.as_nanos() - a1.as_nanos() >= f.model.min_gap_ns,
            "tiny messages respect the rate cap"
        );
    }

    #[test]
    fn ib_contention_throttles_many_flows() {
        let model = NetModel::infiniband_40g();
        assert_eq!(model.contention_factor(1), 1.0);
        assert_eq!(model.contention_factor(4), 1.0);
        assert!(model.contention_factor(8) > 1.5);
    }

    #[test]
    fn pp_decomposition_reconstructs_curve() {
        // o_send + L + wire + o_recv must reproduce the calibrated
        // ping-pong time to within rounding.
        for model in [NetModel::ethernet_10g(), NetModel::infiniband_40g()] {
            for s in [1usize, 256, 1 << 10, 16 << 10, 2 << 20] {
                let total = model.pp_curve.time_ns(s);
                let rebuilt =
                    2 * model.pp_overhead_ns(s) + model.latency.as_nanos() + model.wire_time_ns(s);
                let err = (total as i64 - rebuilt as i64).abs();
                assert!(err <= 2, "{} size {s}: {total} vs {rebuilt}", model.name);
            }
        }
    }

    #[test]
    #[cfg(feature = "trace")]
    fn tracer_sees_transfers_ledger_and_nic_lanes() {
        use empi_trace::{Cat, Tracer};
        let tracer = Tracer::new(2);
        let mut f = eth_fabric(2);
        f.set_tracer(tracer.clone());
        let arrive = f.transmit(0, 1, 1024, VTime::ZERO);
        let r = tracer.take_report();
        assert_eq!(r.transfers, 1);
        assert_eq!(r.local_transfers, 0);
        let p = r.pair(0, 1);
        assert_eq!(p.tx_bytes, 1024);
        assert_eq!(p.tx_msgs, 1);
        // No MPI layer above us, so nothing was delivered yet.
        assert_eq!(p.rx_bytes, 0);
        assert_eq!(r.wire_ns, arrive.as_nanos());
        let wire = r.events.iter().find(|e| e.cat == Cat::Wire).unwrap();
        assert_eq!(wire.bytes, 1024);
        assert_eq!(wire.dur_ns, arrive.as_nanos());
        // One tx busy interval on node 0, one rx on node 1.
        assert_eq!(r.events.iter().filter(|e| e.cat == Cat::Nic).count(), 2);
    }

    #[test]
    fn flow_tracker_prunes_stale_entries() {
        let mut port = NicPort::default();
        assert_eq!(port.touch_flow(1, 0), 1);
        assert_eq!(port.touch_flow(2, 10), 2);
        // Within the window both still count.
        assert_eq!(port.touch_flow(3, FLOW_WINDOW_NS - 100), 3);
        // Far past the window, stale flows are pruned.
        assert_eq!(port.touch_flow(4, 3 * FLOW_WINDOW_NS), 1);
    }

    #[test]
    fn lookahead_lower_bounds_every_transmit() {
        for model in [
            NetModel::ethernet_10g(),
            NetModel::infiniband_40g(),
            NetModel::instant(),
        ] {
            let la = model.min_latency();
            assert!(la.as_nanos() >= 1, "lookahead must be nonzero");
            // Both placements: cross-node and same-node (intra link).
            for topo in [Topology::one_per_node(4), Topology::block(4, 1)] {
                let mut f = Fabric::new(model.clone(), topo);
                assert_eq!(f.lookahead(), la);
                for size in [0usize, 1, 64, 1 << 20] {
                    let start = VTime(12_345);
                    let arrive = f.transmit(0, 3, size, start);
                    assert!(
                        arrive >= start + la,
                        "{}: {size}B arrived at {arrive} < start+lookahead",
                        f.model().name
                    );
                }
            }
        }
    }
}
