//! Rank-to-node placement.
//!
//! The paper's cluster has 8-core nodes; its scalability settings place
//! 4–64 ranks on 4–8 nodes. Placement decides which communications cross
//! the network and which stay inside a node's shared memory.

/// Mapping from ranks to nodes.
#[derive(Debug, Clone)]
pub struct Topology {
    node_of: Vec<usize>,
    n_nodes: usize,
}

impl Topology {
    /// Block placement: ranks `0..k` on node 0, the next `k` on node 1,
    /// and so on — how `mpirun` fills hosts by default and what the
    /// paper's "64 rank / 8 node" setting means.
    pub fn block(n_ranks: usize, n_nodes: usize) -> Self {
        assert!(n_ranks > 0 && n_nodes > 0);
        assert!(
            n_ranks.is_multiple_of(n_nodes),
            "ranks ({n_ranks}) must divide evenly over nodes ({n_nodes})"
        );
        let per = n_ranks / n_nodes;
        Topology {
            node_of: (0..n_ranks).map(|r| r / per).collect(),
            n_nodes,
        }
    }

    /// Round-robin placement: rank `r` on node `r % n_nodes`.
    pub fn round_robin(n_ranks: usize, n_nodes: usize) -> Self {
        assert!(n_ranks > 0 && n_nodes > 0);
        Topology {
            node_of: (0..n_ranks).map(|r| r % n_nodes).collect(),
            n_nodes,
        }
    }

    /// One rank per node (the micro-benchmark layouts: ping-pong uses
    /// two processes on different nodes).
    pub fn one_per_node(n_ranks: usize) -> Self {
        Topology::block(n_ranks, n_ranks)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Number of ranks.
    pub fn n_ranks(&self) -> usize {
        self.node_of.len()
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of[a] == self.node_of[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_placement() {
        let t = Topology::block(64, 8);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(7), 0);
        assert_eq!(t.node_of(8), 1);
        assert_eq!(t.node_of(63), 7);
        assert!(t.same_node(0, 7));
        assert!(!t.same_node(7, 8));
    }

    #[test]
    fn round_robin_placement() {
        let t = Topology::round_robin(16, 4);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 1);
        assert_eq!(t.node_of(5), 1);
        assert!(t.same_node(1, 5));
    }

    #[test]
    fn one_per_node_is_all_remote() {
        let t = Topology::one_per_node(2);
        assert!(!t.same_node(0, 1));
        assert_eq!(t.n_nodes(), 2);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_block_rejected() {
        Topology::block(10, 3);
    }
}
