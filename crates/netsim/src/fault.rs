//! Deterministic seeded fault injection.
//!
//! A [`FaultPlan`] is a pure function from a *fault coordinate* — the
//! link `(src, dst)`, a per-stream sequence number, the chunk index and
//! the delivery attempt — to a [`Verdict`]. No wall-clock time and no
//! global mutable RNG state are involved: the verdict is derived by
//! hashing the coordinate into a splitmix64 stream seeded from the
//! plan's seed, so any failure observed in a run can be replayed
//! exactly from `(seed, rates)` alone, regardless of thread scheduling
//! or call order.
//!
//! The plan covers the failure modes of the robustness study:
//!
//! * payload **bit-flips** (a single flipped bit — the canonical GCM
//!   tag-failure trigger),
//! * **truncation** (a runt frame cut mid-ciphertext),
//! * whole-frame **drop** (the payload is lost; the simulator delivers
//!   a zero-length runt so queue matching stays reliable while the
//!   content is gone),
//! * **duplication** (the same sealed frame delivered twice),
//! * extra latency **jitter** (a delay spike before the NIC), and
//! * **degraded [`crate::CorePool`] workers** (a deterministic subset
//!   of a rank's crypto cores runs N× slower).
//!
//! The attempt number is part of the coordinate on purpose: a
//! retransmission of the same chunk draws a *fresh* verdict, so a
//! recovery protocol converges with probability `1 - rate^attempts`
//! instead of hitting the same deterministic fault forever.

/// One step of the splitmix64 generator (public so higher layers can
/// derive their own deterministic sub-streams from a seed).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Fold a list of coordinates into one 64-bit stream seed.
fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut s = seed;
    let mut acc = splitmix64(&mut s);
    for &p in parts {
        let mut t = acc ^ p.wrapping_mul(0x2545_f491_4f6c_dd1d);
        acc = splitmix64(&mut t);
    }
    acc
}

/// Map a 64-bit draw to a uniform f64 in `[0, 1)`.
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Per-event injection probabilities (each in `[0, 1]`) plus the
/// parameters of the non-probabilistic fault shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Probability a frame has one payload bit flipped.
    pub bit_flip: f64,
    /// Probability a frame is truncated mid-ciphertext.
    pub truncate: f64,
    /// Probability a frame's payload is dropped (delivered as a runt).
    pub drop: f64,
    /// Probability a frame is delivered twice.
    pub duplicate: f64,
    /// Probability a frame picks up extra latency before the NIC.
    pub jitter: f64,
    /// Upper bound on the injected extra latency (ns).
    pub jitter_max_ns: u64,
    /// Fraction of each rank's crypto workers that run degraded.
    pub degraded_workers: f64,
    /// Slowdown factor applied to a degraded worker (≥ 1).
    pub worker_slowdown: u32,
}

impl FaultRates {
    /// Everything off: the plan always answers [`Verdict::Deliver`].
    pub const ZERO: FaultRates = FaultRates {
        bit_flip: 0.0,
        truncate: 0.0,
        drop: 0.0,
        duplicate: 0.0,
        jitter: 0.0,
        jitter_max_ns: 0,
        degraded_workers: 0.0,
        worker_slowdown: 1,
    };

    /// The same probability `p` for every payload fault class, default
    /// jitter bound (20 µs) and no degraded workers — the knob the
    /// chaos bench sweeps.
    pub fn uniform(p: f64) -> Self {
        FaultRates {
            bit_flip: p,
            truncate: p,
            drop: p,
            duplicate: p,
            jitter: p,
            jitter_max_ns: 20_000,
            ..FaultRates::ZERO
        }
    }

    /// True when no fault class can ever fire.
    pub fn is_zero(&self) -> bool {
        self.bit_flip == 0.0
            && self.truncate == 0.0
            && self.drop == 0.0
            && self.duplicate == 0.0
            && self.jitter == 0.0
            && self.degraded_workers == 0.0
    }
}

/// What the plan decided for one frame at one delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver unmodified.
    Deliver,
    /// Flip bit `bit` of byte `byte` (indices taken modulo the payload
    /// length by [`Verdict::mutate`]).
    BitFlip {
        /// Byte offset to corrupt.
        byte: usize,
        /// Bit within that byte (0–7).
        bit: u8,
    },
    /// Keep only the first `keep` bytes.
    Truncate {
        /// Number of bytes to keep (capped at the payload length).
        keep: usize,
    },
    /// Lose the payload entirely.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
    /// Delay the frame by `extra_ns` before it reaches the NIC.
    Jitter {
        /// Injected extra latency (ns).
        extra_ns: u64,
    },
}

impl Verdict {
    /// Short label for trace spans and fault ledgers (`fault/...`).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Deliver => "fault/none",
            Verdict::BitFlip { .. } => "fault/bitflip",
            Verdict::Truncate { .. } => "fault/truncate",
            Verdict::Drop => "fault/drop",
            Verdict::Duplicate => "fault/duplicate",
            Verdict::Jitter { .. } => "fault/jitter",
        }
    }

    /// Apply the payload-mutating verdicts in place. `BitFlip` and
    /// `Truncate` modify `data`; `Drop` empties it; `Duplicate` and
    /// `Jitter` are scheduling faults the caller must handle.
    pub fn mutate(&self, data: &mut Vec<u8>) {
        match *self {
            Verdict::Deliver | Verdict::Duplicate | Verdict::Jitter { .. } => {}
            Verdict::BitFlip { byte, bit } => {
                if !data.is_empty() {
                    let i = byte % data.len();
                    data[i] ^= 1 << (bit % 8);
                }
            }
            Verdict::Truncate { keep } => {
                let keep = keep.min(data.len().saturating_sub(1));
                data.truncate(keep);
            }
            Verdict::Drop => data.clear(),
        }
    }
}

/// A seeded, replayable fault plan (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every coordinate hashes it into its own stream.
    pub seed: u64,
    /// Injection probabilities and shape parameters.
    pub rates: FaultRates,
}

impl FaultPlan {
    /// A plan with the given seed and rates.
    pub fn new(seed: u64, rates: FaultRates) -> Self {
        FaultPlan { seed, rates }
    }

    /// Decide the fate of one frame. The coordinate is
    /// `(src, dst, stream, index, attempt)`: `stream` is a per-link
    /// message sequence number, `index` the chunk index within the
    /// message (0 for plain frames) and `attempt` the delivery attempt
    /// (0 = first transmission, 1+ = retransmits). `len` is the sealed
    /// payload length, used to place bit-flips and truncation points.
    pub fn verdict(
        &self,
        src: usize,
        dst: usize,
        stream: u64,
        index: u32,
        attempt: u32,
        len: usize,
    ) -> Verdict {
        if self.rates.is_zero() {
            return Verdict::Deliver;
        }
        let mut s = mix(
            self.seed,
            &[src as u64, dst as u64, stream, index as u64, attempt as u64],
        );
        let r = self.rates;
        let p = unit(splitmix64(&mut s));
        let mut edge = r.drop;
        if p < edge {
            return Verdict::Drop;
        }
        edge += r.truncate;
        if p < edge {
            let keep = if len == 0 {
                0
            } else {
                (splitmix64(&mut s) as usize) % len
            };
            return Verdict::Truncate { keep };
        }
        edge += r.bit_flip;
        if p < edge {
            return Verdict::BitFlip {
                byte: splitmix64(&mut s) as usize,
                bit: (splitmix64(&mut s) % 8) as u8,
            };
        }
        edge += r.duplicate;
        if p < edge {
            return Verdict::Duplicate;
        }
        edge += r.jitter;
        if p < edge && r.jitter_max_ns > 0 {
            return Verdict::Jitter {
                extra_ns: 1 + splitmix64(&mut s) % r.jitter_max_ns,
            };
        }
        Verdict::Deliver
    }

    /// The deterministic set of degraded workers for `rank`'s pool of
    /// `workers` cores, as `(worker, slowdown)` pairs. The count is
    /// `round(workers * degraded_workers)`; which workers are chosen
    /// depends only on `(seed, rank)`.
    pub fn degraded_workers(&self, rank: usize, workers: usize) -> Vec<(usize, u32)> {
        let k = (workers as f64 * self.rates.degraded_workers).round() as usize;
        let k = k.min(workers);
        if k == 0 || self.rates.worker_slowdown <= 1 {
            return Vec::new();
        }
        // Partial Fisher–Yates over worker indices, keyed by (seed, rank).
        let mut s = mix(self.seed, &[0x5eed_c0de, rank as u64]);
        let mut idx: Vec<usize> = (0..workers).collect();
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + (splitmix64(&mut s) as usize) % (workers - i);
            idx.swap(i, j);
            out.push((idx[i], self.rates.worker_slowdown));
        }
        out.sort_unstable();
        out
    }
}

/// How a rank leaves the world under a [`CrashPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Process death (crash-stop): the rank's coroutine is parked at
    /// the scheduled instant and never runs again. The node's OS
    /// daemon observes the exit, so a liveness probe gets a definitive
    /// "dead" answer immediately.
    Crash,
    /// Wedged process: the rank stops servicing its queues at the
    /// scheduled instant, but the OS still holds its process lease, so
    /// probes go unanswered and a detector needs several missed-probe
    /// rounds before it may declare the rank dead.
    Hang,
}

impl CrashKind {
    /// Scheduler-status label (`"crashed"` / `"hung"`).
    pub fn label(self) -> &'static str {
        match self {
            CrashKind::Crash => "crashed",
            CrashKind::Hang => "hung",
        }
    }
}

/// One scheduled process-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The rank that dies.
    pub rank: usize,
    /// Virtual time of death. The rank executes normally strictly
    /// before `at` and never at or after it.
    pub at: crate::time::VTime,
    /// Crash-stop or wedge (see [`CrashKind`]).
    pub kind: CrashKind,
}

/// A schedule of process-level faults: which ranks die, when, and how.
///
/// Unlike the message-level [`FaultPlan`] (a probability field), a
/// crash plan is an explicit event list — the fault-tolerance tests
/// need to kill a *specific* rank at a *specific* virtual time and
/// assert on what every survivor observes. Plans are deterministic by
/// construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashPlan {
    events: Vec<CrashEvent>,
}

impl CrashPlan {
    /// An empty plan (nobody dies).
    pub fn new() -> Self {
        CrashPlan::default()
    }

    /// Schedule a crash-stop death of `rank` at virtual time `at`.
    pub fn crash_at(mut self, rank: usize, at: crate::time::VTime) -> Self {
        self.events.push(CrashEvent {
            rank,
            at,
            kind: CrashKind::Crash,
        });
        self
    }

    /// Schedule a wedge of `rank` at virtual time `at`.
    pub fn hang_at(mut self, rank: usize, at: crate::time::VTime) -> Self {
        self.events.push(CrashEvent {
            rank,
            at,
            kind: CrashKind::Hang,
        });
        self
    }

    /// No events scheduled?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All scheduled events.
    pub fn events(&self) -> &[CrashEvent] {
        &self.events
    }

    /// The earliest scheduled fate of `rank`, if any.
    pub fn fate(&self, rank: usize) -> Option<(crate::time::VTime, CrashKind)> {
        self.events
            .iter()
            .filter(|e| e.rank == rank)
            .map(|e| (e.at, e.kind))
            .min_by_key(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_are_deterministic() {
        let plan = FaultPlan::new(42, FaultRates::uniform(0.3));
        for stream in 0..50u64 {
            for index in 0..4u32 {
                let a = plan.verdict(0, 1, stream, index, 0, 1024);
                let b = plan.verdict(0, 1, stream, index, 0, 1024);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn zero_rates_always_deliver() {
        let plan = FaultPlan::new(7, FaultRates::ZERO);
        for stream in 0..200u64 {
            assert_eq!(plan.verdict(0, 1, stream, 0, 0, 4096), Verdict::Deliver);
        }
        assert!(FaultRates::ZERO.is_zero());
        assert!(!FaultRates::uniform(0.01).is_zero());
    }

    #[test]
    fn saturated_drop_rate_always_drops() {
        let rates = FaultRates {
            drop: 1.0,
            ..FaultRates::ZERO
        };
        let plan = FaultPlan::new(3, rates);
        for stream in 0..50u64 {
            assert_eq!(plan.verdict(2, 5, stream, 1, 0, 100), Verdict::Drop);
        }
    }

    #[test]
    fn attempts_draw_fresh_verdicts() {
        // At a 50% corruption rate, some attempt within the first few
        // retries must deliver — the whole point of keying on attempt.
        let plan = FaultPlan::new(11, FaultRates::uniform(0.5 / 5.0));
        let mut delivered = false;
        for attempt in 0..16u32 {
            if plan.verdict(0, 1, 9, 0, attempt, 256) == Verdict::Deliver {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "16 attempts at 50% total fault rate all failed");
    }

    #[test]
    fn mixed_rates_hit_every_class() {
        let plan = FaultPlan::new(1234, FaultRates::uniform(0.15));
        let mut seen = [false; 6];
        for stream in 0..400u64 {
            let v = plan.verdict(1, 2, stream, 0, 0, 512);
            let i = match v {
                Verdict::Deliver => 0,
                Verdict::BitFlip { .. } => 1,
                Verdict::Truncate { .. } => 2,
                Verdict::Drop => 3,
                Verdict::Duplicate => 4,
                Verdict::Jitter { .. } => 5,
            };
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "classes seen: {seen:?}");
    }

    #[test]
    fn mutate_shapes_payloads() {
        let orig = vec![0u8; 64];
        let mut flipped = orig.clone();
        Verdict::BitFlip { byte: 70, bit: 3 }.mutate(&mut flipped);
        assert_eq!(flipped.len(), 64);
        let diff: u32 = orig
            .iter()
            .zip(&flipped)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");

        let mut cut = orig.clone();
        Verdict::Truncate { keep: 1000 }.mutate(&mut cut);
        assert!(cut.len() < 64, "truncate always removes something");

        let mut gone = orig.clone();
        Verdict::Drop.mutate(&mut gone);
        assert!(gone.is_empty());
    }

    #[test]
    fn degraded_workers_are_stable_per_rank() {
        let rates = FaultRates {
            degraded_workers: 0.5,
            worker_slowdown: 4,
            ..FaultRates::ZERO
        };
        let plan = FaultPlan::new(99, rates);
        let a = plan.degraded_workers(0, 4);
        assert_eq!(a.len(), 2);
        assert_eq!(a, plan.degraded_workers(0, 4));
        for &(w, slow) in &a {
            assert!(w < 4);
            assert_eq!(slow, 4);
        }
        // No degradation requested → empty.
        let none = FaultPlan::new(99, FaultRates::ZERO);
        assert!(none.degraded_workers(0, 4).is_empty());
    }

    #[test]
    fn jitter_is_bounded() {
        let rates = FaultRates {
            jitter: 1.0,
            jitter_max_ns: 500,
            ..FaultRates::ZERO
        };
        let plan = FaultPlan::new(5, rates);
        for stream in 0..100u64 {
            match plan.verdict(0, 1, stream, 0, 0, 64) {
                Verdict::Jitter { extra_ns } => {
                    assert!((1..=500).contains(&extra_ns), "extra_ns={extra_ns}")
                }
                v => panic!("expected jitter, got {v:?}"),
            }
        }
    }
}
