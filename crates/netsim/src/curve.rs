//! Size-indexed calibration curves.
//!
//! Fabric presets are calibrated against the paper's *measured baseline*
//! tables rather than first-principles constants (DESIGN.md §5): a curve
//! maps message size to a throughput (MB/s), and times are derived from
//! it. Interpolation is piecewise-linear in log-log space, which matches
//! how such benchmark curves look on the paper's log-scale axes.

/// A piecewise log-log curve over `(size_bytes, MB/s)` anchors.
#[derive(Debug, Clone)]
pub struct Curve {
    anchors: Vec<(f64, f64)>,
}

impl Curve {
    /// Build from anchors sorted by size (validated).
    pub fn new(anchors: &[(usize, f64)]) -> Self {
        assert!(!anchors.is_empty(), "curve needs at least one anchor");
        for w in anchors.windows(2) {
            assert!(w[0].0 < w[1].0, "curve anchors must be strictly increasing");
        }
        assert!(
            anchors.iter().all(|&(s, v)| s > 0 && v > 0.0),
            "curve anchors must be positive"
        );
        Curve {
            anchors: anchors.iter().map(|&(s, v)| (s as f64, v)).collect(),
        }
    }

    /// Interpolated value at `size` (clamped to the anchor range).
    pub fn value_at(&self, size: usize) -> f64 {
        let s = (size.max(1)) as f64;
        let a = &self.anchors;
        if s <= a[0].0 {
            return a[0].1;
        }
        if s >= a[a.len() - 1].0 {
            return a[a.len() - 1].1;
        }
        for w in a.windows(2) {
            if s <= w[1].0 {
                let t = (s.ln() - w[0].0.ln()) / (w[1].0.ln() - w[0].0.ln());
                return (w[0].1.ln() + t * (w[1].1.ln() - w[0].1.ln())).exp();
            }
        }
        unreachable!()
    }

    /// Time in nanoseconds to move `size` bytes at the curve's
    /// throughput for that size.
    pub fn time_ns(&self, size: usize) -> u64 {
        let mbs = self.value_at(size);
        (size as f64 / (mbs * 1e6) * 1e9) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_anchors_exactly() {
        let c = Curve::new(&[(1, 0.05), (1024, 17.03), (1 << 21, 1038.0)]);
        assert!((c.value_at(1) - 0.05).abs() < 1e-12);
        assert!((c.value_at(1024) - 17.03).abs() < 1e-9);
        assert!((c.value_at(1 << 21) - 1038.0).abs() < 1e-6);
    }

    #[test]
    fn clamps_outside_range() {
        let c = Curve::new(&[(16, 2.0), (64, 8.0)]);
        assert_eq!(c.value_at(1), 2.0);
        assert_eq!(c.value_at(1 << 30), 8.0);
    }

    #[test]
    fn time_derivation() {
        let c = Curve::new(&[(1024, 1024.0)]); // 1024 MB/s flat
                                               // 1 MiB at 1024 MB/s = 1 MiB / (1024e6 B/s) ≈ 1024 µs... check:
        let t = c.time_ns(1 << 20);
        let expect = (1u64 << 20) as f64 / (1024e6) * 1e9;
        assert!((t as f64 - expect).abs() < 2.0, "t={t} expect={expect}");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted() {
        Curve::new(&[(10, 1.0), (10, 2.0)]);
    }

    #[test]
    fn interpolation_is_monotone_for_monotone_anchors() {
        let c = Curve::new(&[(1, 1.0), (100, 10.0), (10_000, 100.0)]);
        let mut prev = 0.0;
        for s in [1usize, 3, 10, 50, 100, 700, 5000, 10_000] {
            let v = c.value_at(s);
            assert!(v >= prev);
            prev = v;
        }
    }
}
