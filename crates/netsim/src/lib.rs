//! # empi-netsim — virtual-time cluster simulator
//!
//! The paper's experiments ran on an 8-node Xeon cluster with 10 GbE and
//! 40 Gb InfiniBand QDR NICs. This crate substitutes for that hardware
//! (DESIGN.md §2) with:
//!
//! * [`engine`] — a conservative discrete-event engine where each
//!   simulated rank is a real OS thread running real code, scheduled one
//!   at a time in minimum-virtual-clock order. Real computations (the
//!   actual AES-GCM work, the actual NAS kernels) execute and can be
//!   charged either by measured wall time or by calibrated models.
//! * [`fabric`] — the interconnect model: calibrated curves for wire
//!   bandwidth, blocking ping-pong time, and streaming occupancy; per-NIC
//!   busy timelines for flow sharing; message-rate floors and a
//!   flow-contention penalty (the InfiniBand 8-pair throttle).
//! * [`topology`] — rank-to-node placement (block / round-robin).
//!
//! ```
//! use empi_netsim::{Engine, VDur};
//!
//! let out = Engine::new(4).run(|h| {
//!     h.advance(VDur::from_micros(10 * (h.rank() as u64 + 1)));
//!     h.now().as_micros_f64()
//! });
//! assert_eq!(out.results, vec![10.0, 20.0, 30.0, 40.0]);
//! assert_eq!(out.end_time.as_micros_f64(), 40.0);
//! ```

pub mod cores;
pub mod curve;
pub mod engine;
pub mod fabric;
pub mod fault;
pub mod time;
pub mod topology;

pub use cores::{CorePool, CoreSlot};
pub use curve::Curve;
pub use empi_metrics::{Metrics, MetricsSnapshot, SloConfig};
pub use empi_pool::{BufferPool, PooledBuf};
pub use empi_trace::{TraceReport, Tracer};
pub use engine::{Engine, FtOutcome, RankDiag, RunOutcome, SimError, SimHandle};
pub use fabric::{Fabric, FabricStats, NetModel};
pub use fault::{CrashEvent, CrashKind, CrashPlan, FaultPlan, FaultRates, Verdict};
pub use time::{Schedule, VDur, VTime};
pub use topology::Topology;
