//! Virtual time: plain nanosecond counters with explicit conversions.
//!
//! The simulator's clock is a `u64` nanosecond count since the start of
//! the run. A newtype keeps virtual instants from mixing with real
//! `std::time` values and gives the handful of arithmetic ops we need.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the virtual clock (ns since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

/// A span of virtual time (ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VDur(pub u64);

impl VTime {
    /// The origin of the virtual clock.
    pub const ZERO: VTime = VTime(0);

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds since simulation start (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration since `earlier`; saturates at zero.
    pub fn since(self, earlier: VTime) -> VDur {
        VDur(self.0.saturating_sub(earlier.0))
    }
}

impl VDur {
    /// Zero-length duration.
    pub const ZERO: VDur = VDur(0);

    /// From nanoseconds.
    pub fn from_nanos(ns: u64) -> VDur {
        VDur(ns)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> VDur {
        VDur(us * 1_000)
    }

    /// From fractional microseconds.
    pub fn from_micros_f64(us: f64) -> VDur {
        VDur((us * 1_000.0).max(0.0) as u64)
    }

    /// From fractional seconds.
    pub fn from_secs_f64(s: f64) -> VDur {
        VDur((s * 1e9).max(0.0) as u64)
    }

    /// Nanosecond count.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds (fractional).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Seconds (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

/// A fixed-period schedule on the virtual clock: the timeline is tiled
/// into intervals of `period` ns and every instant maps to the index of
/// the interval containing it. Ranks that share a period agree on the
/// index to within their mutual clock skew, which is what lets the key
/// plane rotate epochs without any wire synchronization — each rank
/// derives the current epoch locally from its own clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    period: VDur,
}

impl Schedule {
    /// A schedule ticking every `period` (clamped to ≥ 1 ns so a
    /// zero-period schedule cannot divide by zero).
    pub fn every(period: VDur) -> Schedule {
        Schedule {
            period: VDur(period.0.max(1)),
        }
    }

    /// The tick period.
    pub fn period(&self) -> VDur {
        self.period
    }

    /// The interval index containing `t` (interval `i` spans
    /// `[i*period, (i+1)*period)`).
    pub fn index_at(&self, t: VTime) -> u64 {
        t.0 / self.period.0
    }

    /// The instant interval `index` begins.
    pub fn boundary(&self, index: u64) -> VTime {
        VTime(index.saturating_mul(self.period.0))
    }

    /// The first boundary strictly after `t`.
    pub fn next_boundary(&self, t: VTime) -> VTime {
        self.boundary(self.index_at(t) + 1)
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    fn add(self, d: VDur) -> VTime {
        VTime(self.0 + d.0)
    }
}

impl AddAssign<VDur> for VTime {
    fn add_assign(&mut self, d: VDur) {
        self.0 += d.0;
    }
}

impl Add for VDur {
    type Output = VDur;
    fn add(self, o: VDur) -> VDur {
        VDur(self.0 + o.0)
    }
}

impl AddAssign for VDur {
    fn add_assign(&mut self, o: VDur) {
        self.0 += o.0;
    }
}

impl Sub for VTime {
    type Output = VDur;
    fn sub(self, o: VTime) -> VDur {
        VDur(self.0.saturating_sub(o.0))
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = VTime(1_000) + VDur::from_micros(2);
        assert_eq!(t, VTime(3_000));
        assert_eq!(t - VTime(1_000), VDur(2_000));
        assert_eq!(VTime(5).since(VTime(10)), VDur::ZERO, "saturating");
        assert_eq!(VDur::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(VDur::from_micros_f64(-3.0), VDur::ZERO, "clamped");
    }

    #[test]
    fn schedule_indexes_and_boundaries() {
        let s = Schedule::every(VDur::from_micros(10));
        assert_eq!(s.index_at(VTime::ZERO), 0);
        assert_eq!(s.index_at(VTime(9_999)), 0);
        assert_eq!(
            s.index_at(VTime(10_000)),
            1,
            "boundary belongs to the next interval"
        );
        assert_eq!(s.boundary(3), VTime(30_000));
        assert_eq!(s.next_boundary(VTime(10_000)), VTime(20_000));
        assert_eq!(s.next_boundary(VTime(10_001)), VTime(20_000));
        // Degenerate period is clamped, never a divide-by-zero.
        assert_eq!(Schedule::every(VDur::ZERO).period(), VDur(1));
    }

    #[test]
    fn display_microseconds() {
        assert_eq!(format!("{}", VTime(1_500)), "1.500us");
        assert_eq!(format!("{}", VDur(2_000_000)), "2000.000us");
    }
}
