//! Conservative virtual-time execution engine.
//!
//! Each simulated rank runs real Rust code on its own OS thread, but a
//! scheduler token guarantees **exactly one rank executes at a time**,
//! and the token always goes to the runnable rank with the smallest
//! virtual clock. That gives three properties the benchmarks rely on:
//!
//! 1. *Causality*: when a rank executes at virtual time `t`, every other
//!    rank has logically reached `t`, so no message can later arrive
//!    "from the past".
//! 2. *Modelled parallelism*: each rank owns a dedicated virtual core
//!    (the paper's regime — 64 ranks on 64 physical cores), even though
//!    the host machine may have a single core.
//! 3. *Determinism of structure*: message-matching order depends only on
//!    virtual timestamps, not host thread scheduling.
//!
//! Rank code interacts with the engine through [`SimHandle`]:
//! [`SimHandle::advance`] charges virtual compute time,
//! [`SimHandle::charge_measured`] charges the *measured* wall time of a
//! real computation (valid because execution is exclusive), and
//! [`SimHandle::block_on`] parks the rank until a peer calls
//! [`SimHandle::notify_rank`].

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

use empi_metrics::{Metric, Metrics, MetricsSnapshot};
use empi_pool::BufferPool;
use empi_trace::{TraceReport, Tracer};
use parking_lot::{Condvar, Mutex};

use crate::cores::CorePool;
use crate::fault::{CrashKind, CrashPlan};
use crate::time::{VDur, VTime};

/// Why a rank is parked (for deadlock diagnostics).
type BlockReason = &'static str;

/// Per-rank diagnostic callback: extra context (queue depths, pending
/// requests) appended to the all-blocked deadlock report. Installed by
/// higher layers that know what a rank was waiting for.
type DiagFn = Arc<dyn Fn(usize) -> String + Send + Sync>;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Eligible to receive the token.
    Ready,
    /// Currently holds the token.
    Running,
    /// Parked until a peer calls `notify_rank`.
    Blocked,
    /// Rank closure returned.
    Done,
    /// Killed by the crash plan: the coroutine was parked at its death
    /// time and will never run again. Unlike `Done`, there is no
    /// result, and the rank still appears in deadlock reports so
    /// survivors' stuck waits name the corpse they were waiting on.
    Dead,
}

struct RankState {
    status: Status,
    reason: BlockReason,
    /// Armed ft-wait deadline (ns) while `Blocked`, if any. When no
    /// rank is runnable the scheduler fires the earliest such deadline
    /// instead of declaring a deadlock — the failure detector's timer.
    deadline: Option<u64>,
}

/// Sentinel panic payload used to unwind a crashed rank's coroutine
/// out of arbitrarily deep user code. Never observed by callers: the
/// engine catches and swallows it (death bookkeeping happens before
/// the unwind starts).
struct CrashUnwind;

thread_local! {
    /// Set just before a [`CrashUnwind`] so the panic hook stays quiet
    /// for this deliberate unwind (and only this one).
    static SILENT_UNWIND: Cell<bool> = const { Cell::new(false) };
}

static SILENT_HOOK: Once = Once::new();

/// Install (once, process-wide) a panic-hook wrapper that suppresses
/// output for deliberate crash unwinds and delegates everything else
/// to the previous hook. Thread-local gating keeps real panics in
/// concurrently running tests fully reported.
fn install_silent_hook() {
    SILENT_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENT_UNWIND.with(|f| f.get()) {
                prev(info);
            }
        }));
    });
}

struct Sched {
    ranks: Vec<RankState>,
    /// Which rank currently holds (or was just granted) the token.
    running: Option<usize>,
    /// Ranks not yet `Done`.
    active: usize,
    /// The first fatal condition (deadlock or rank panic), if any.
    poisoned: Option<SimError>,
}

/// Diagnostic snapshot of one rank at the moment a deadlock was
/// declared — what the all-blocked report prints, but structured so
/// chaos tests can assert on it.
#[derive(Debug, Clone)]
pub struct RankDiag {
    /// Rank id.
    pub rank: usize,
    /// Scheduler status (`Blocked`, `Ready`, …).
    pub status: String,
    /// The `block_on` reason the rank was parked with.
    pub reason: &'static str,
    /// The rank's virtual clock (ns) at the time of the report.
    pub clock_ns: u64,
    /// Output of the installed [`Engine::diagnostics`] callback
    /// (queue depths etc.), empty if none.
    pub detail: String,
}

/// Why a simulation could not complete. Returned by
/// [`Engine::try_run`]; [`Engine::run`] converts it into the
/// historical panic.
#[derive(Debug, Clone)]
pub enum SimError {
    /// Every live rank was parked with nothing left to wake it.
    Deadlock {
        /// The rendered all-blocked report (one line per live rank).
        report: String,
        /// Per-rank diagnostics, one entry per live rank.
        ranks: Vec<RankDiag>,
    },
    /// A rank's closure panicked.
    RankPanic {
        /// The rank that panicked first.
        rank: usize,
        /// Its panic message.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { report, .. } => write!(f, "{report}"),
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

struct Shared {
    sched: Mutex<Sched>,
    /// One condvar per rank (all used with the single `sched` mutex):
    /// granting the token wakes exactly one thread instead of herding
    /// all N ranks awake on every yield.
    cvs: Vec<Condvar>,
    /// Per-rank virtual clocks (ns). Written only by the owning rank
    /// while holding the token; read freely.
    clocks: Vec<AtomicU64>,
    /// Multiplier applied to measured wall time in `charge_measured`.
    time_scale: f64,
    /// Total yield operations (scheduler-overhead metric).
    yields: AtomicU64,
    /// Total notify operations.
    notifies: AtomicU64,
    /// Installed trace collector, if any.
    tracer: Option<Tracer>,
    /// Installed metrics recorder, if any (histograms + flight
    /// recorder; see [`Engine::metrics`]).
    metrics: Option<Metrics>,
    /// Extra per-rank context for the deadlock report.
    diag: Option<DiagFn>,
    /// Per-rank shared crypto worker pool (see
    /// [`SimHandle::with_core_pool`]): one set of physical core
    /// timelines per rank, shared by every communicator on that rank.
    /// Lazily created on first use. The lock is uncontended (execution
    /// is exclusive); it only satisfies `Sync`.
    pools: Vec<Mutex<Option<CorePool>>>,
    /// Engine-wide reusable wire-buffer pool (see
    /// [`SimHandle::buffer_pool`]). One pool for all ranks because
    /// frames cross ranks in-process: the receiver reclaims the very
    /// allocation the sender drew, closing the recycle loop.
    buf_pool: BufferPool,
    /// Scheduled process-level faults (empty = nobody dies).
    crash: CrashPlan,
    /// Executed death times (ns); `u64::MAX` = still alive. Written
    /// once, by the dying rank while it holds the token.
    deaths: Vec<AtomicU64>,
    /// Set when a rank's closure returns cleanly. A rank that exits
    /// before its scheduled death survived; the liveness oracle must
    /// not report it dead.
    finished: Vec<AtomicBool>,
}

impl Shared {
    /// Grant the token to the minimum-clock Ready rank. Must be called
    /// with the sched lock held and `running == None`.
    ///
    /// When no rank is runnable, the world is quiescent: before
    /// declaring a deadlock, fire the earliest armed event on a
    /// blocked rank — an ft-wait deadline (the failure detector's
    /// lease timer) or a scheduled crash — by advancing that rank's
    /// clock to the event time and making it Ready. Healthy runs never
    /// reach this branch (some rank is always runnable), which is what
    /// keeps an armed-but-idle detector free: its deadlines are
    /// bookkeeping until the moment the world would otherwise hang.
    fn grant(&self, s: &mut Sched) {
        debug_assert!(s.running.is_none());
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (r, st) in s.ranks.iter().enumerate() {
                if st.status == Status::Ready {
                    let c = self.clocks[r].load(Ordering::Relaxed);
                    if best.is_none_or(|(bc, _)| c < bc) {
                        best = Some((c, r));
                    }
                }
            }
            if let Some((_, r)) = best {
                s.running = Some(r);
                self.cvs[r].notify_one();
                return;
            }
            if s.active == 0 || s.poisoned.is_some() {
                return;
            }
            // Quiescent. Earliest pending timer or crash on a blocked
            // rank, if any (ties: lowest rank).
            let mut ev: Option<(u64, usize)> = None;
            for (r, st) in s.ranks.iter().enumerate() {
                if st.status != Status::Blocked {
                    continue;
                }
                let mut t = st.deadline;
                if let Some((ct, _)) = self.crash.fate(r) {
                    t = Some(t.map_or(ct.0, |d| d.min(ct.0)));
                }
                if let Some(t) = t {
                    if ev.is_none_or(|(bt, _)| t < bt) {
                        ev = Some((t, r));
                    }
                }
            }
            if let Some((t, r)) = ev {
                let c = self.clocks[r].load(Ordering::Relaxed);
                self.clocks[r].store(c.max(t), Ordering::Relaxed);
                s.ranks[r].status = Status::Ready;
                s.ranks[r].reason = "timer";
                s.ranks[r].deadline = None;
                continue; // re-run the min-clock pick
            }
            // Every live rank is Blocked with nothing armed: deadlock.
            let mut msg = String::from("virtual-time deadlock; all ranks blocked:\n");
            let mut ranks = Vec::new();
            for (r, st) in s.ranks.iter().enumerate() {
                if st.status != Status::Done {
                    let clock_ns = self.clocks[r].load(Ordering::Relaxed);
                    msg.push_str(&format!(
                        "  rank {r}: {:?} ({}) at t={clock_ns}ns",
                        st.status, st.reason,
                    ));
                    let mut detail = String::new();
                    if let Some(diag) = &self.diag {
                        detail = diag(r);
                        if !detail.is_empty() {
                            msg.push_str(&format!(" [{detail}]"));
                        }
                    }
                    msg.push('\n');
                    ranks.push(RankDiag {
                        rank: r,
                        status: format!("{:?}", st.status),
                        reason: st.reason,
                        clock_ns,
                        detail,
                    });
                }
            }
            s.poisoned = Some(SimError::Deadlock { report: msg, ranks });
            for cv in &self.cvs {
                cv.notify_all();
            }
            return;
        }
    }

    /// Park until this rank holds the token. If the rank's clock has
    /// reached its scheduled death, the rank dies here instead of
    /// running: bookkeeping under the lock, then a sentinel unwind out
    /// of the rank closure ([`CrashUnwind`], swallowed by `run_impl`).
    fn wait_for_token(&self, rank: usize) {
        let mut s = self.sched.lock();
        loop {
            if let Some(p) = &s.poisoned {
                let p = p.clone();
                drop(s);
                panic!("simulation aborted: {p}");
            }
            if s.running == Some(rank) {
                if let Some((t, kind)) = self.crash.fate(rank) {
                    if self.clocks[rank].load(Ordering::Relaxed) >= t.0
                        && self.deaths[rank].load(Ordering::Relaxed) == u64::MAX
                    {
                        self.deaths[rank].store(t.0, Ordering::Relaxed);
                        s.ranks[rank].status = Status::Dead;
                        s.ranks[rank].reason = kind.label();
                        s.ranks[rank].deadline = None;
                        s.active -= 1;
                        s.running = None;
                        self.grant(&mut s);
                        drop(s);
                        SILENT_UNWIND.with(|f| f.set(true));
                        std::panic::panic_any(CrashUnwind);
                    }
                }
                s.ranks[rank].status = Status::Running;
                s.ranks[rank].deadline = None;
                return;
            }
            if s.running.is_none() {
                self.grant(&mut s);
                continue;
            }
            self.cvs[rank].wait(&mut s);
        }
    }

    /// Release the token with this rank in `status`, then re-acquire it
    /// if `status` is Ready/Blocked (Done releases permanently).
    fn release(&self, rank: usize, status: Status, reason: BlockReason) {
        self.release_with_deadline(rank, status, reason, None);
    }

    /// [`Shared::release`] with an armed wake-up deadline (only
    /// meaningful with `Status::Blocked`): if the world quiesces, the
    /// scheduler advances this rank to the deadline and wakes it.
    fn release_with_deadline(
        &self,
        rank: usize,
        status: Status,
        reason: BlockReason,
        deadline: Option<u64>,
    ) {
        self.yields.fetch_add(1, Ordering::Relaxed);
        let mut s = self.sched.lock();
        s.ranks[rank].status = status;
        s.ranks[rank].reason = reason;
        s.ranks[rank].deadline = deadline;
        if status == Status::Done {
            s.active -= 1;
            self.finished[rank].store(true, Ordering::Relaxed);
        }
        s.running = None;
        self.grant(&mut s);
    }
}

/// The engine owning a set of simulated ranks.
///
/// Construct with [`Engine::new`], then call [`Engine::run`].
pub struct Engine {
    n_ranks: usize,
    time_scale: f64,
    tracer: Option<Tracer>,
    metrics: Option<Metrics>,
    diag: Option<DiagFn>,
    crash: CrashPlan,
}

impl Engine {
    /// An engine for `n_ranks` simulated processes.
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        Engine {
            n_ranks,
            time_scale: 1.0,
            tracer: None,
            metrics: None,
            diag: None,
            crash: CrashPlan::new(),
        }
    }

    /// Install a process-level fault schedule. Ranks named by the plan
    /// stop executing at their scheduled virtual times; use
    /// [`Engine::try_run_ft`] to run a world where deaths are expected
    /// ([`Engine::run`]/[`Engine::try_run`] treat a missing rank
    /// result as a bug).
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash = plan;
        self
    }

    /// Set the multiplier applied to measured wall time by
    /// [`SimHandle::charge_measured`] (e.g. to model a slower CPU).
    pub fn time_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.time_scale = scale;
        self
    }

    /// Install a trace collector. `block_on` park intervals become
    /// per-rank wait spans, and [`RunOutcome::trace`] carries the
    /// final [`TraceReport`]. Without a collector the hooks cost one
    /// `Option` check each (and nothing at all when the `trace`
    /// feature is disabled).
    pub fn tracer(mut self, t: Tracer) -> Self {
        self.tracer = Some(t);
        self
    }

    /// Install a metrics recorder. `block_on` park intervals become
    /// wait-latency histogram samples, higher layers reach the
    /// recorder through [`SimHandle::metrics`], and
    /// [`RunOutcome::metrics`] carries the merged
    /// [`MetricsSnapshot`] taken at end time. Recording never moves a
    /// virtual clock, so results are bit-identical with or without a
    /// recorder installed.
    pub fn metrics(mut self, m: Metrics) -> Self {
        self.metrics = Some(m);
        self
    }

    /// Install a per-rank diagnostic callback whose output is appended
    /// to the all-blocked deadlock report. The callback runs with the
    /// scheduler lock held, so it must not yield or block; use
    /// `try_lock` on any shared state it inspects.
    pub fn diagnostics(mut self, f: impl Fn(usize) -> String + Send + Sync + 'static) -> Self {
        self.diag = Some(Arc::new(f));
        self
    }

    /// Run `f(rank, handle)` on every rank to completion and return the
    /// per-rank results in rank order, plus engine statistics.
    ///
    /// Panics (with the original message) if any rank panics or if the
    /// simulation deadlocks. Chaos tests that must observe those
    /// conditions as data use [`Engine::try_run`] instead.
    pub fn run<T, F>(&self, f: F) -> RunOutcome<T>
    where
        T: Send,
        F: Fn(&SimHandle) -> T + Sync,
    {
        match self.run_impl(f, true) {
            Ok(out) => out.expect_all(),
            Err(e) => panic!("simulation aborted: {e}"),
        }
    }

    /// Like [`Engine::run`], but surfaces deadlocks and rank panics as
    /// a typed [`SimError`] instead of panicking: a deadlock returns
    /// [`SimError::Deadlock`] carrying the per-rank queue diagnostics,
    /// and a rank panic returns [`SimError::RankPanic`] with the first
    /// panic's message.
    pub fn try_run<T, F>(&self, f: F) -> Result<RunOutcome<T>, SimError>
    where
        T: Send,
        F: Fn(&SimHandle) -> T + Sync,
    {
        self.run_impl(f, false).map(FtOutcome::expect_all)
    }

    /// Fault-tolerant run: like [`Engine::try_run`], but ranks killed
    /// by the installed [`Engine::crash_plan`] are expected — their
    /// results come back as `None` alongside their death records,
    /// instead of aborting the outcome.
    pub fn try_run_ft<T, F>(&self, f: F) -> Result<FtOutcome<T>, SimError>
    where
        T: Send,
        F: Fn(&SimHandle) -> T + Sync,
    {
        self.run_impl(f, false)
    }

    fn run_impl<T, F>(&self, f: F, propagate_panics: bool) -> Result<FtOutcome<T>, SimError>
    where
        T: Send,
        F: Fn(&SimHandle) -> T + Sync,
    {
        if !self.crash.is_empty() {
            install_silent_hook();
        }
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                ranks: (0..self.n_ranks)
                    .map(|_| RankState {
                        status: Status::Ready,
                        reason: "startup",
                        deadline: None,
                    })
                    .collect(),
                running: None,
                active: self.n_ranks,
                poisoned: None,
            }),
            cvs: (0..self.n_ranks).map(|_| Condvar::new()).collect(),
            clocks: (0..self.n_ranks).map(|_| AtomicU64::new(0)).collect(),
            time_scale: self.time_scale,
            yields: AtomicU64::new(0),
            notifies: AtomicU64::new(0),
            tracer: self.tracer.clone(),
            metrics: self.metrics.clone(),
            diag: self.diag.clone(),
            pools: (0..self.n_ranks).map(|_| Mutex::new(None)).collect(),
            buf_pool: BufferPool::new(),
            crash: self.crash.clone(),
            deaths: (0..self.n_ranks)
                .map(|_| AtomicU64::new(u64::MAX))
                .collect(),
            finished: (0..self.n_ranks).map(|_| AtomicBool::new(false)).collect(),
        });

        let mut results: Vec<Option<T>> = (0..self.n_ranks).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let handle = SimHandle {
                            shared: Arc::clone(&shared),
                            rank,
                            n_ranks: self.n_ranks,
                        };
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            shared.wait_for_token(rank);
                            f(&handle)
                        }));
                        match out {
                            Ok(v) => {
                                *slot = Some(v);
                                shared.release(rank, Status::Done, "finished");
                            }
                            Err(payload) if payload.is::<CrashUnwind>() => {
                                // Deliberate death: bookkeeping already
                                // done under the lock in wait_for_token.
                                SILENT_UNWIND.with(|fl| fl.set(false));
                            }
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                {
                                    let mut s = shared.sched.lock();
                                    if s.poisoned.is_none() {
                                        s.poisoned =
                                            Some(SimError::RankPanic { rank, message: msg });
                                    }
                                    s.ranks[rank].status = Status::Done;
                                    s.active -= 1;
                                    s.running = None;
                                    for cv in &shared.cvs {
                                        cv.notify_all();
                                    }
                                }
                                if propagate_panics {
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        }
                    })
                })
                .collect();
            let mut first_panic = None;
            for h in handles {
                if let Err(p) = h.join() {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
            if let Some(p) = first_panic {
                if propagate_panics {
                    std::panic::resume_unwind(p);
                }
            }
        });

        if let Some(e) = shared.sched.lock().poisoned.clone() {
            return Err(e);
        }
        let end_time = VTime(
            shared
                .clocks
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        );
        let deaths = (0..self.n_ranks)
            .map(|r| {
                let t = shared.deaths[r].load(Ordering::Relaxed);
                if t == u64::MAX {
                    None
                } else {
                    let kind = self
                        .crash
                        .fate(r)
                        .map(|(_, k)| k)
                        .unwrap_or(CrashKind::Crash);
                    Some((VTime(t), kind))
                }
            })
            .collect();
        Ok(FtOutcome {
            results,
            deaths,
            end_time,
            yields: shared.yields.load(Ordering::Relaxed),
            notifies: shared.notifies.load(Ordering::Relaxed),
            trace: shared.tracer.as_ref().map(|t| t.take_report()),
            metrics: shared.metrics.as_ref().map(|m| m.snapshot(end_time.0)),
        })
    }
}

/// Results and statistics of one simulation run.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Per-rank return values, in rank order.
    pub results: Vec<T>,
    /// The largest virtual clock reached by any rank.
    pub end_time: VTime,
    /// Scheduler yield operations performed.
    pub yields: u64,
    /// Notify operations performed.
    pub notifies: u64,
    /// Trace data, when a collector was installed via [`Engine::tracer`].
    pub trace: Option<TraceReport>,
    /// Metrics snapshot (merged at `end_time`), when a recorder was
    /// installed via [`Engine::metrics`].
    pub metrics: Option<MetricsSnapshot>,
}

/// Results of a fault-tolerant run ([`Engine::try_run_ft`]): ranks
/// killed by the crash plan come back with no result and a death
/// record instead of aborting the world.
#[derive(Debug)]
pub struct FtOutcome<T> {
    /// Per-rank return values in rank order; `None` for ranks that
    /// died before their closure returned.
    pub results: Vec<Option<T>>,
    /// Executed deaths in rank order: `Some((time, kind))` for ranks
    /// the crash plan actually killed.
    pub deaths: Vec<Option<(VTime, CrashKind)>>,
    /// The largest virtual clock reached by any rank.
    pub end_time: VTime,
    /// Scheduler yield operations performed.
    pub yields: u64,
    /// Notify operations performed.
    pub notifies: u64,
    /// Trace data, when a collector was installed via [`Engine::tracer`].
    pub trace: Option<TraceReport>,
    /// Metrics snapshot (merged at `end_time`), when a recorder was
    /// installed via [`Engine::metrics`].
    pub metrics: Option<MetricsSnapshot>,
}

impl<T> FtOutcome<T> {
    /// Convert into a [`RunOutcome`], requiring every rank to have
    /// survived. Panics if any rank died — [`Engine::run`] /
    /// [`Engine::try_run`] use this, so a crash plan on those entry
    /// points is a usage bug with a clear message.
    fn expect_all(self) -> RunOutcome<T> {
        RunOutcome {
            results: self
                .results
                .into_iter()
                .map(|r| r.expect("rank died under a crash plan; use try_run_ft"))
                .collect(),
            end_time: self.end_time,
            yields: self.yields,
            notifies: self.notifies,
            trace: self.trace,
            metrics: self.metrics,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// A rank's interface to the virtual clock and the scheduler.
pub struct SimHandle {
    shared: Arc<Shared>,
    rank: usize,
    n_ranks: usize,
}

impl SimHandle {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total rank count.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// This rank's current virtual time.
    pub fn now(&self) -> VTime {
        VTime(self.shared.clocks[self.rank].load(Ordering::Relaxed))
    }

    /// Read another rank's clock (diagnostics only).
    pub fn clock_of(&self, rank: usize) -> VTime {
        VTime(self.shared.clocks[rank].load(Ordering::Relaxed))
    }

    #[inline]
    fn set_clock(&self, t: VTime) {
        self.shared.clocks[self.rank].store(t.0, Ordering::Relaxed);
    }

    /// Charge `d` of virtual compute time and yield.
    pub fn advance(&self, d: VDur) {
        self.advance_to(self.now() + d);
    }

    /// Move the clock forward to `t` (no-op move if already past) and
    /// yield so lower-clock ranks can run.
    pub fn advance_to(&self, t: VTime) {
        let mut new_t = self.now().max(t);
        // A doomed rank never executes past its scheduled death: clamp
        // the advance to the death instant; re-acquiring the token at
        // that clock kills the rank (see `wait_for_token`).
        if let Some((ct, _)) = self.shared.crash.fate(self.rank) {
            if new_t >= ct && self.shared.deaths[self.rank].load(Ordering::Relaxed) == u64::MAX {
                new_t = ct;
            }
        }
        self.set_clock(new_t);
        self.shared.release(self.rank, Status::Ready, "advance");
        self.shared.wait_for_token(self.rank);
    }

    /// Run `f` exclusively, measure its wall time, charge it (scaled by
    /// the engine's `time_scale`) as virtual compute, and return its
    /// result.
    pub fn charge_measured<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        let elapsed = start.elapsed().as_nanos() as f64 * self.shared.time_scale;
        self.advance(VDur(elapsed as u64));
        out
    }

    /// Park this rank until `check` produces a completion.
    ///
    /// `check` is evaluated immediately and after every
    /// [`notify_rank`](Self::notify_rank) aimed at this rank; it returns
    /// `Some((ready_at, value))` when the awaited condition holds, where
    /// `ready_at` is the virtual time at which it became true (the clock
    /// jumps to `max(now, ready_at)`).
    ///
    /// Exclusive execution makes the check-then-park sequence atomic
    /// with respect to all other ranks, so no wakeup can be lost.
    pub fn block_on<T>(
        &self,
        reason: &'static str,
        mut check: impl FnMut() -> Option<(VTime, T)>,
    ) -> T {
        let entered = self.now();
        loop {
            if let Some((t, v)) = check() {
                self.advance_to(t);
                if let Some(tracer) = &self.shared.tracer {
                    // Virtual wait = entry to completion, whether the
                    // rank actually parked or the condition was already
                    // satisfied at a future timestamp.
                    tracer.wait_span(self.rank, entered.0, self.now().0, reason);
                }
                if let Some(m) = &self.shared.metrics {
                    let now = self.now().0;
                    m.record(self.rank, Metric::Wait, reason, -1, 0, now, now - entered.0);
                }
                return v;
            }
            self.shared.release(self.rank, Status::Blocked, reason);
            self.shared.wait_for_token(self.rank);
        }
    }

    /// Park this rank until `check` produces a completion **or** the
    /// virtual clock reaches `deadline` with the whole world quiescent
    /// (every other live rank parked too) — the failure detector's
    /// lease timer. Returns `None` when the deadline fired.
    ///
    /// The timer is conservative: it can only fire when no rank is
    /// runnable, so on a healthy run where traffic keeps arriving it
    /// costs nothing — no wire bytes, no virtual time, no wake-ups. A
    /// completion always beats the timer (data wins ties).
    pub fn block_on_deadline<T>(
        &self,
        reason: &'static str,
        deadline: VTime,
        mut check: impl FnMut() -> Option<(VTime, T)>,
    ) -> Option<T> {
        let entered = self.now();
        let finish = |got: bool| {
            if let Some(tracer) = &self.shared.tracer {
                tracer.wait_span(self.rank, entered.0, self.now().0, reason);
            }
            if let Some(m) = &self.shared.metrics {
                let now = self.now().0;
                m.record(self.rank, Metric::Wait, reason, -1, 0, now, now - entered.0);
            }
            got
        };
        loop {
            if let Some((t, v)) = check() {
                self.advance_to(t);
                finish(true);
                return Some(v);
            }
            if self.now() >= deadline {
                finish(false);
                return None;
            }
            self.shared
                .release_with_deadline(self.rank, Status::Blocked, reason, Some(deadline.0));
            self.shared.wait_for_token(self.rank);
        }
    }

    /// Has `target` actually died? Returns the executed death time.
    /// Unlike [`SimHandle::peer_dead`] this reports only deaths the
    /// engine has already carried out, regardless of this rank's
    /// clock — diagnostics, not protocol input.
    pub fn dead_since(&self, target: usize) -> Option<VTime> {
        let t = self.shared.deaths[target].load(Ordering::Relaxed);
        (t != u64::MAX).then_some(VTime(t))
    }

    /// The liveness oracle a probe consults: is `target` dead *as of
    /// this rank's current virtual time*?
    ///
    /// This models the per-node OS daemon a real failure detector
    /// probes (procfs / process lease), not gossip: a live rank is
    /// never reported dead (probes of live peers always answer
    /// "alive", so the detector has zero false positives by
    /// construction), and a rank whose scheduled death lies at or
    /// before this rank's clock is reported dead even if the engine
    /// has not yet parked its coroutine — conservative min-clock
    /// scheduling may let a doomed rank's final pre-death instructions
    /// run in the observer's past, which is causally unobservable.
    /// [`CrashKind`] tells the caller whether the daemon saw the
    /// process exit ([`CrashKind::Crash`] — definitive) or the process
    /// is wedged but still holds its lease ([`CrashKind::Hang`] — the
    /// probe goes unanswered and the detector must count missed
    /// rounds).
    pub fn peer_dead(&self, target: usize) -> Option<(VTime, CrashKind)> {
        let (t, kind) = self.shared.crash.fate(target)?;
        if t > self.now() || self.shared.finished[target].load(Ordering::Relaxed) {
            return None;
        }
        Some((t, kind))
    }

    /// The scheduled fate of `target` under the installed crash plan
    /// (regardless of whether it has executed yet).
    pub fn planned_fate(&self, target: usize) -> Option<(VTime, CrashKind)> {
        self.shared.crash.fate(target)
    }

    /// The trace collector installed on this engine, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.shared.tracer.as_ref()
    }

    /// The metrics recorder installed on this engine, if any.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.shared.metrics.as_ref()
    }

    /// The engine's measured-time multiplier (see [`Engine::time_scale`]).
    /// Lets callers that schedule measured work on *other* virtual
    /// resources (e.g. a [`crate::cores::CorePool`]) apply the same
    /// scaling as [`Self::charge_measured`] without moving this clock.
    pub fn time_scale(&self) -> f64 {
        self.shared.time_scale
    }

    /// Run `f` against this rank's shared crypto worker pool, growing
    /// it to at least `workers` timelines first.
    ///
    /// The pool is per *rank*, not per communicator: two communicators
    /// on one rank delegate chunk seals/opens to the same physical
    /// cores, so their jobs serialize on the shared busy-until
    /// timelines instead of each modeling a phantom private pool. A
    /// communicator configured for `k` workers should schedule with
    /// [`CorePool::schedule_limited`] and limit `k`.
    pub fn with_core_pool<T>(&self, workers: usize, f: impl FnOnce(&mut CorePool) -> T) -> T {
        let mut guard = self.shared.pools[self.rank].lock();
        let pool = guard.get_or_insert_with(|| CorePool::new(workers.max(1)));
        pool.ensure_workers(workers.max(1));
        f(pool)
    }

    /// The engine-wide [`BufferPool`] backing the zero-copy hot path.
    /// Shared by every rank (buffers travel sender → receiver within
    /// one process); the handle is cheap to clone.
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.shared.buf_pool
    }

    /// Wake `target` if it is parked in [`block_on`](Self::block_on),
    /// causing it to re-evaluate its condition.
    pub fn notify_rank(&self, target: usize) {
        self.shared.notifies.fetch_add(1, Ordering::Relaxed);
        let mut s = self.shared.sched.lock();
        if s.ranks[target].status == Status::Blocked {
            s.ranks[target].status = Status::Ready;
            s.ranks[target].reason = "notified";
            // The waker still holds the token; the target will be
            // considered at the waker's next yield.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;

    #[test]
    fn clocks_advance_independently() {
        let out = Engine::new(4).run(|h| {
            h.advance(VDur::from_micros((h.rank() as u64 + 1) * 10));
            h.now()
        });
        for (r, t) in out.results.iter().enumerate() {
            assert_eq!(t.as_nanos(), (r as u64 + 1) * 10_000);
        }
        assert_eq!(out.end_time, VTime(40_000));
    }

    #[test]
    fn min_clock_scheduling_orders_events() {
        // Each rank appends (time, rank) to a shared log at staggered
        // times; the log must come out sorted by time.
        let log = PlMutex::new(Vec::new());
        Engine::new(8).run(|h| {
            for step in 0..20u64 {
                h.advance(VDur(100 + (h.rank() as u64 * 37 + step * 13) % 900));
                log.lock().push((h.now().as_nanos(), h.rank()));
            }
        });
        let log = log.into_inner();
        assert_eq!(log.len(), 160);
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "events out of order: {w:?}");
        }
    }

    #[test]
    fn block_and_notify_ping() {
        // Rank 0 produces a value at t=50us; rank 1 blocks for it.
        let slot: PlMutex<Option<(VTime, u32)>> = PlMutex::new(None);
        let out = Engine::new(2).run(|h| {
            if h.rank() == 0 {
                h.advance(VDur::from_micros(50));
                *slot.lock() = Some((h.now(), 99));
                h.notify_rank(1);
                0
            } else {
                let v = h.block_on("value", || slot.lock().map(|(t, v)| (t, v)));
                assert_eq!(v, 99);
                assert_eq!(h.now(), VTime(50_000));
                v
            }
        });
        assert_eq!(out.results, vec![0, 99]);
    }

    #[test]
    fn deadlock_is_detected() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(2).run(|h| {
                // Both ranks block on a condition nobody completes.
                h.block_on::<()>("never", || None);
            });
        });
        let msg = format!("{:?}", result.unwrap_err().downcast_ref::<String>());
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn deadlock_report_includes_per_rank_diagnostics() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(2)
                .diagnostics(|r| format!("queue-depth-of-{r}=0"))
                .run(|h| {
                    h.advance(VDur(100 * (h.rank() as u64 + 1)));
                    h.block_on::<()>("recv", || None);
                });
        });
        let msg = format!("{:?}", result.unwrap_err().downcast_ref::<String>());
        assert!(msg.contains("deadlock"), "got: {msg}");
        // Every live rank appears with its reason, clock, and the
        // installed diagnostic line.
        assert!(
            msg.contains("rank 0") && msg.contains("rank 1"),
            "got: {msg}"
        );
        assert!(msg.contains("recv"), "got: {msg}");
        assert!(
            msg.contains("queue-depth-of-0=0") && msg.contains("queue-depth-of-1=0"),
            "got: {msg}"
        );
        assert!(
            msg.contains("t=100ns") && msg.contains("t=200ns"),
            "got: {msg}"
        );
    }

    #[test]
    #[cfg(feature = "trace")]
    fn tracer_records_wait_spans() {
        use empi_trace::Cat;
        let slot: PlMutex<Option<(VTime, u32)>> = PlMutex::new(None);
        let out = Engine::new(2).tracer(Tracer::new(2)).run(|h| {
            if h.rank() == 0 {
                h.advance(VDur::from_micros(50));
                *slot.lock() = Some((h.now(), 7));
                h.notify_rank(1);
            } else {
                h.block_on("value", || slot.lock().map(|(t, v)| (t, v)));
            }
        });
        let trace = out.trace.expect("tracer installed");
        assert_eq!(trace.n_ranks, 2);
        // Rank 1 waited from t=0 to t=50us for rank 0's value.
        assert_eq!(trace.per_rank[1].wait_ns, 50_000);
        assert_eq!(trace.per_rank[0].wait_ns, 0);
        let span = trace
            .events
            .iter()
            .find(|e| e.cat == Cat::Wait)
            .expect("wait span recorded");
        assert_eq!(span.name, "value");
        assert_eq!(span.tid, 1);
        assert_eq!(span.dur_ns, 50_000);
    }

    #[test]
    fn try_run_surfaces_deadlock_as_typed_error() {
        let err = Engine::new(2)
            .diagnostics(|r| format!("q{r}=0"))
            .try_run(|h| {
                h.advance(VDur(50 * (h.rank() as u64 + 1)));
                h.block_on::<()>("recv", || None);
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { report, ranks } => {
                assert!(report.contains("deadlock"), "got: {report}");
                assert_eq!(ranks.len(), 2);
                assert_eq!(ranks[0].reason, "recv");
                assert_eq!(ranks[0].clock_ns, 50);
                assert_eq!(ranks[1].clock_ns, 100);
                assert!(ranks[1].detail.contains("q1=0"), "got: {:?}", ranks[1]);
            }
            e => panic!("expected deadlock, got {e}"),
        }
    }

    #[test]
    fn try_run_surfaces_rank_panic_as_typed_error() {
        let err = Engine::new(2)
            .try_run(|h| {
                if h.rank() == 1 {
                    panic!("chaos strikes");
                }
                h.block_on::<()>("forever", || None);
            })
            .unwrap_err();
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("chaos strikes"), "got: {message}");
            }
            e => panic!("expected rank panic, got {e}"),
        }
    }

    #[test]
    fn try_run_success_matches_run() {
        let out = Engine::new(3)
            .try_run(|h| {
                h.advance(VDur(10));
                h.rank()
            })
            .expect("clean run");
        assert_eq!(out.results, vec![0, 1, 2]);
        assert_eq!(out.end_time, VTime(10));
    }

    #[test]
    fn rank_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(3).run(|h| {
                if h.rank() == 1 {
                    panic!("boom at rank 1");
                }
                // Others block forever; the panic must still unwind them.
                h.block_on::<()>("waiting forever", || None);
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn charge_measured_moves_clock() {
        let out = Engine::new(1).run(|h| {
            let before = h.now();
            let x = h.charge_measured(|| (0..10_000u64).sum::<u64>());
            assert_eq!(x, 49_995_000);
            h.now().since(before)
        });
        assert!(out.results[0] > VDur::ZERO);
    }

    #[test]
    fn time_scale_multiplies_measured_time() {
        let busy = || {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        };
        let t1 = Engine::new(1)
            .run(|h| {
                h.charge_measured(busy);
                h.now()
            })
            .results[0];
        let t10 = Engine::new(1)
            .time_scale(10.0)
            .run(|h| {
                h.charge_measured(busy);
                h.now()
            })
            .results[0];
        // Allow generous jitter; the scaled run must be clearly longer.
        assert!(t10.as_nanos() > t1.as_nanos() * 3, "t1={t1} t10={t10}");
    }

    #[test]
    fn many_ranks_many_yields() {
        let out = Engine::new(32).run(|h| {
            for _ in 0..50 {
                h.advance(VDur(10));
            }
            h.now()
        });
        assert!(out.results.iter().all(|t| *t == VTime(500)));
        assert!(out.yields >= 32 * 50);
    }

    #[test]
    fn crash_plan_kills_rank_and_survivors_finish() {
        let plan = CrashPlan::new().crash_at(1, VTime(100));
        let out = Engine::new(3)
            .crash_plan(plan)
            .try_run_ft(|h| {
                // Everyone tries to compute past t=100; rank 1 never
                // makes it.
                for _ in 0..10 {
                    h.advance(VDur(20));
                }
                h.now()
            })
            .expect("survivors complete");
        assert_eq!(out.results[0], Some(VTime(200)));
        assert_eq!(out.results[1], None, "rank 1 died, no result");
        assert_eq!(out.results[2], Some(VTime(200)));
        assert_eq!(out.deaths[1], Some((VTime(100), CrashKind::Crash)));
        assert!(out.deaths[0].is_none() && out.deaths[2].is_none());
    }

    #[test]
    fn doomed_rank_clock_clamps_at_death_time() {
        // A single big advance across the death instant must not let
        // the rank act "after" dying.
        let plan = CrashPlan::new().crash_at(0, VTime(50));
        let reached = PlMutex::new(VTime(0));
        let out = Engine::new(2)
            .crash_plan(plan)
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    h.advance(VDur::from_micros(1)); // 1000ns >> 50ns
                    *reached.lock() = h.now(); // unreachable
                }
                h.advance(VDur(10));
            })
            .expect("run completes");
        assert_eq!(out.deaths[0], Some((VTime(50), CrashKind::Crash)));
        assert_eq!(*reached.lock(), VTime(0), "rank 0 executed past death");
        assert_eq!(out.results[1], Some(()));
    }

    #[test]
    fn deadline_fires_when_world_quiesces() {
        // Rank 1 dies; rank 0 waits on it with a lease deadline. The
        // wait must time out at exactly the deadline instead of
        // deadlocking the world.
        let plan = CrashPlan::new().crash_at(1, VTime(50));
        let out = Engine::new(2)
            .crash_plan(plan)
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    let got = h.block_on_deadline::<()>("lease", VTime(500), || None);
                    assert!(got.is_none(), "nothing could complete this wait");
                    h.now()
                } else {
                    h.block_on::<()>("never", || None); // dies at t=50
                    unreachable!()
                }
            })
            .expect("deadline resolves the wait");
        assert_eq!(out.results[0], Some(VTime(500)));
        assert_eq!(out.deaths[1], Some((VTime(50), CrashKind::Crash)));
    }

    #[test]
    fn data_beats_deadline() {
        // The deadline only fires on a quiescent world; a completion
        // arriving first wins and the clock lands on the data time.
        let slot: PlMutex<Option<(VTime, u32)>> = PlMutex::new(None);
        let out = Engine::new(2).run(|h| {
            if h.rank() == 0 {
                h.advance(VDur(70));
                *slot.lock() = Some((h.now(), 42));
                h.notify_rank(1);
                0
            } else {
                let v = h
                    .block_on_deadline("value", VTime(10_000), || *slot.lock())
                    .expect("data arrives well before the lease expires");
                assert_eq!(h.now(), VTime(70));
                v
            }
        });
        assert_eq!(out.results, vec![0, 42]);
        // On this healthy run the timer never fired: end time is the
        // data time, not the deadline.
        assert_eq!(out.end_time, VTime(70));
    }

    #[test]
    fn liveness_oracle_is_sound() {
        let plan = CrashPlan::new().hang_at(2, VTime(300));
        let out = Engine::new(3)
            .crash_plan(plan)
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    // Before the death instant: everyone looks alive.
                    h.advance(VDur(100));
                    assert!(h.peer_dead(1).is_none());
                    assert!(h.peer_dead(2).is_none());
                    // Past it: the doomed rank is reported, live peers
                    // never are.
                    h.advance(VDur(400));
                    assert!(h.peer_dead(1).is_none());
                    assert_eq!(h.peer_dead(2), Some((VTime(300), CrashKind::Hang)));
                } else {
                    h.advance(VDur(500));
                }
            })
            .expect("run completes");
        assert_eq!(out.deaths[2], Some((VTime(300), CrashKind::Hang)));
    }

    #[test]
    fn rank_finishing_before_its_fate_survives() {
        // Scheduled to die at t=1000 but the closure returns at t=10:
        // the process exited cleanly first, so the oracle must never
        // report it dead.
        let plan = CrashPlan::new().crash_at(1, VTime(1000));
        let out = Engine::new(2)
            .crash_plan(plan)
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    h.advance(VDur(5000));
                    assert!(h.peer_dead(1).is_none(), "clean exit is not a death");
                } else {
                    h.advance(VDur(10));
                }
            })
            .expect("run completes");
        assert!(out.deaths[1].is_none());
        assert_eq!(out.results[1], Some(()));
    }

    #[test]
    fn run_panics_when_crash_plan_kills_a_rank() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(2)
                .crash_plan(CrashPlan::new().crash_at(0, VTime(10)))
                .run(|h| h.advance(VDur(100)));
        });
        let err = result.unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("try_run_ft"), "got: {msg}");
    }

    #[test]
    fn clean_run_identical_with_empty_crash_plan() {
        let baseline = Engine::new(4).run(|h| {
            for _ in 0..5 {
                h.advance(VDur(17));
            }
            h.now()
        });
        let with_plan = Engine::new(4).crash_plan(CrashPlan::new()).run(|h| {
            for _ in 0..5 {
                h.advance(VDur(17));
            }
            h.now()
        });
        assert_eq!(baseline.results, with_plan.results);
        assert_eq!(baseline.end_time, with_plan.end_time);
        assert_eq!(baseline.yields, with_plan.yields);
    }

    #[test]
    fn survivor_deadlock_still_reported_and_names_the_corpse() {
        // Rank 1 dies; rank 0 then blocks forever with no deadline
        // armed. That is still an application deadlock, and the report
        // must name the dead rank so the stuck wait is explicable.
        let err = Engine::new(2)
            .crash_plan(CrashPlan::new().crash_at(1, VTime(10)))
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    h.block_on::<()>("recv-from-1", || None);
                } else {
                    h.block_on::<()>("never", || None);
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { report, ranks } => {
                assert!(report.contains("Dead"), "got: {report}");
                assert!(report.contains("recv-from-1"), "got: {report}");
                assert_eq!(ranks.len(), 2, "corpse appears in diagnostics");
            }
            e => panic!("expected deadlock, got {e}"),
        }
    }
}
