//! Conservative virtual-time execution engine with sharded run queues
//! and detached compute.
//!
//! Each simulated rank runs real Rust code on its own OS thread. State
//! interactions are serialized into **tenures**: a scheduler token
//! guarantees exactly one rank executes a tenure at a time, and the
//! token always goes to the grantable rank with the smallest key
//! `(virtual clock, rank)`. That gives three properties the benchmarks
//! rely on:
//!
//! 1. *Causality*: when a rank executes at virtual time `t`, every other
//!    rank has logically reached `t`, so no message can later arrive
//!    "from the past".
//! 2. *Modelled parallelism*: each rank owns a dedicated virtual core
//!    (the paper's regime — 64 ranks on 64 physical cores), even though
//!    the host machine may have a single core.
//! 3. *Determinism of structure*: message-matching order depends only on
//!    virtual timestamps, not host thread scheduling.
//!
//! # Shards and detached compute
//!
//! The engine partitions ranks into `S` contiguous **shards**
//! ([`Engine::shards`]), each with its own min-key run queue (a binary
//! heap over `(clock, rank)`), and grants the token to the minimum over
//! the shard heads — the LBTS (lower bound on time stamp) of the world.
//! A shard's **watermark** is the smallest key it could next interact
//! at ([`SimHandle::shard_watermark`]); the grant key is always ≤ every
//! shard watermark, and a message transmitted by the granted tenure
//! arrives no earlier than that LBTS plus the fabric's minimum link
//! latency (the lookahead, `Fabric::lookahead`).
//!
//! Real host work (crypto, kernel arithmetic) escapes the token without
//! breaking determinism: [`SimHandle::charge_overlapped`] charges a
//! *known* model cost `d`, then runs the closure **detached** — the
//! rank's clock moves to `now + d` and the token is released first, so
//! tenures with smaller keys proceed on other host cores while the
//! closure runs. Because the closure performs no simulation-state
//! operations and the rank's next tenure keeps exactly the key it would
//! have had serially, the tenure sequence — and therefore every virtual
//! time, wire byte, and trace event — is bit-identical to the `S = 1`
//! schedule. [`SimHandle::charge_measured`] does the same for
//! *measured* work with a conservative floor: the rank parks in a
//! `Computing` state keyed at its current clock, only strictly smaller
//! keys may run meanwhile, and the wall time of the closure (a
//! per-thread `Instant` delta, valid under concurrency) is charged on
//! rejoin. At `S = 1` both paths degrade to the historical serial
//! behaviour, with identical yield counts.
//!
//! Rank code interacts with the engine through [`SimHandle`]:
//! [`SimHandle::advance`] charges virtual compute time and
//! [`SimHandle::block_on`] parks the rank until a peer calls
//! [`SimHandle::notify_rank`].

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::time::Instant;

use empi_metrics::{Metric, Metrics, MetricsSnapshot};
use empi_pool::BufferPool;
use empi_trace::{TraceReport, Tracer};
use parking_lot::{Condvar, Mutex};

use crate::cores::CorePool;
use crate::fault::{CrashKind, CrashPlan};
use crate::time::{VDur, VTime};

/// Why a rank is parked (for deadlock diagnostics).
type BlockReason = &'static str;

/// Per-rank diagnostic callback: extra context (queue depths, pending
/// requests) appended to the all-blocked deadlock report. Installed by
/// higher layers that know what a rank was waiting for.
type DiagFn = Arc<dyn Fn(usize) -> String + Send + Sync>;

/// Above this many live ranks the all-blocked deadlock report switches
/// from one line per rank to offenders + a block-reason histogram
/// (printing 4096 diag callbacks would bury the culprit).
const REPORT_FULL_CAP: usize = 16;

/// How many earliest-clock offenders (and how many corpses) the capped
/// report shows.
const REPORT_OFFENDERS: usize = 8;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Eligible to receive the token (has a run-queue entry).
    Ready,
    /// Currently holds the token.
    Running,
    /// Parked until a peer calls `notify_rank`.
    Blocked,
    /// Off running a detached *measured* computation
    /// ([`SimHandle::charge_measured`]): holds no token, but its floor
    /// key gates the scheduler — only strictly smaller keys may run
    /// until it rejoins.
    Computing,
    /// Rank closure returned.
    Done,
    /// Killed by the crash plan: the coroutine was parked at its death
    /// time and will never run again. Unlike `Done`, there is no
    /// result, and the rank still appears in deadlock reports so
    /// survivors' stuck waits name the corpse they were waiting on.
    Dead,
}

struct RankState {
    status: Status,
    reason: BlockReason,
    /// Armed ft-wait deadline (ns) while `Blocked`, if any. When no
    /// rank is runnable the scheduler fires the earliest such deadline
    /// instead of declaring a deadlock — the failure detector's timer.
    deadline: Option<u64>,
}

/// Sentinel panic payload used to unwind a crashed rank's coroutine
/// out of arbitrarily deep user code. Never observed by callers: the
/// engine catches and swallows it (death bookkeeping happens before
/// the unwind starts).
struct CrashUnwind;

thread_local! {
    /// Set just before a [`CrashUnwind`] so the panic hook stays quiet
    /// for this deliberate unwind (and only this one).
    static SILENT_UNWIND: Cell<bool> = const { Cell::new(false) };
}

static SILENT_HOOK: Once = Once::new();

/// Install (once, process-wide) a panic-hook wrapper that suppresses
/// output for deliberate crash unwinds and delegates everything else
/// to the previous hook. Thread-local gating keeps real panics in
/// concurrently running tests fully reported.
fn install_silent_hook() {
    SILENT_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENT_UNWIND.with(|f| f.get()) {
                prev(info);
            }
        }));
    });
}

struct Sched {
    ranks: Vec<RankState>,
    /// Per-shard min-key run queues over `Ready` ranks: entries are
    /// `(clock, rank)` and lazily validated at pop time (an entry is
    /// live iff its rank is still `Ready` at exactly that clock; a
    /// rank's clock cannot change while it is `Ready`, so stale entries
    /// are only ever left behind by status transitions).
    heaps: Vec<BinaryHeap<Reverse<(u64, usize)>>>,
    /// Floor keys of ranks in detached measured compute: the scheduler
    /// grants only keys strictly below the smallest floor, because a
    /// computing rank rejoins at or above its floor.
    computing: BTreeSet<(u64, usize)>,
    /// Which rank currently holds (or was just granted) the token.
    running: Option<usize>,
    /// Ranks not yet `Done`.
    active: usize,
    /// The first fatal condition (deadlock or rank panic), if any.
    poisoned: Option<SimError>,
}

/// Diagnostic snapshot of one rank at the moment a deadlock was
/// declared — what the all-blocked report prints, but structured so
/// chaos tests can assert on it.
#[derive(Debug, Clone)]
pub struct RankDiag {
    /// Rank id.
    pub rank: usize,
    /// Scheduler status (`Blocked`, `Ready`, …).
    pub status: String,
    /// The `block_on` reason the rank was parked with.
    pub reason: &'static str,
    /// The rank's virtual clock (ns) at the time of the report.
    pub clock_ns: u64,
    /// Output of the installed [`Engine::diagnostics`] callback
    /// (queue depths etc.), empty if none.
    pub detail: String,
}

/// Why a simulation could not complete. Returned by
/// [`Engine::try_run`]; [`Engine::run`] converts it into the
/// historical panic.
#[derive(Debug, Clone)]
pub enum SimError {
    /// Every live rank was parked with nothing left to wake it.
    Deadlock {
        /// The rendered all-blocked report: one line per live rank in
        /// small worlds; above [`REPORT_FULL_CAP`] live ranks, a
        /// block-reason histogram plus the earliest-clock offenders
        /// and any corpses.
        report: String,
        /// Per-rank diagnostics: every live rank in small worlds, the
        /// offender subset (earliest clocks + dead ranks) in capped
        /// reports.
        ranks: Vec<RankDiag>,
    },
    /// A rank's closure panicked.
    RankPanic {
        /// The rank that panicked first.
        rank: usize,
        /// Its panic message.
        message: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { report, .. } => write!(f, "{report}"),
            SimError::RankPanic { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for SimError {}

struct Shared {
    sched: Mutex<Sched>,
    /// One condvar per rank (all used with the single `sched` mutex):
    /// granting the token wakes exactly one thread instead of herding
    /// all N ranks awake on every yield.
    cvs: Vec<Condvar>,
    /// Per-rank virtual clocks (ns). Written only by the owning rank
    /// while it holds the token (or, for detached compute, before
    /// releasing / while rejoining under the sched lock); read freely.
    clocks: Vec<AtomicU64>,
    /// Number of scheduler shards = number of compute lanes.
    shards: usize,
    /// Ranks per shard (`ceil(n / shards)`); rank `r` lives in shard
    /// `r / shard_size`.
    shard_size: usize,
    /// Free detached-compute lanes: at most `shards` detached closures
    /// run concurrently, so `--shards N` bounds host-core use.
    lanes: Mutex<usize>,
    lanes_cv: Condvar,
    /// Set with `poisoned`: lets lane waiters bail out instead of
    /// sleeping through an abort.
    aborted: AtomicBool,
    /// Multiplier applied to measured wall time in `charge_measured`.
    time_scale: f64,
    /// Total yield operations (scheduler-overhead metric).
    yields: AtomicU64,
    /// Total notify operations.
    notifies: AtomicU64,
    /// Installed trace collector, if any.
    tracer: Option<Tracer>,
    /// Installed metrics recorder, if any (histograms + flight
    /// recorder; see [`Engine::metrics`]).
    metrics: Option<Metrics>,
    /// Extra per-rank context for the deadlock report.
    diag: Option<DiagFn>,
    /// Per-rank shared crypto worker pool (see
    /// [`SimHandle::with_core_pool`]): one set of physical core
    /// timelines per rank, shared by every communicator on that rank.
    /// Lazily created on first use. The lock is per rank and a rank's
    /// operations are sequential, so it is uncontended; it only
    /// satisfies `Sync`.
    pools: Vec<Mutex<Option<CorePool>>>,
    /// Engine-wide reusable wire-buffer pool (see
    /// [`SimHandle::buffer_pool`]). One pool for all ranks because
    /// frames cross ranks in-process: the receiver reclaims the very
    /// allocation the sender drew, closing the recycle loop.
    buf_pool: BufferPool,
    /// Scheduled process-level faults (empty = nobody dies).
    crash: CrashPlan,
    /// Executed death times (ns); `u64::MAX` = still alive. Written
    /// once, by the dying rank while it holds the token.
    deaths: Vec<AtomicU64>,
    /// Set when a rank's closure returns cleanly. A rank that exits
    /// before its scheduled death survived; the liveness oracle must
    /// not report it dead.
    finished: Vec<AtomicBool>,
}

impl Shared {
    fn shard_of(&self, rank: usize) -> usize {
        rank / self.shard_size
    }

    /// Make `rank` grantable: status `Ready` plus a run-queue entry
    /// keyed by its current clock. Every path into `Ready` goes
    /// through here so the heaps always cover the ready set.
    fn mark_ready(&self, s: &mut Sched, rank: usize, reason: BlockReason) {
        s.ranks[rank].status = Status::Ready;
        s.ranks[rank].reason = reason;
        s.ranks[rank].deadline = None;
        let c = self.clocks[rank].load(Ordering::Relaxed);
        s.heaps[self.shard_of(rank)].push(Reverse((c, rank)));
    }

    /// The minimum live `(clock, rank)` across the shard heads, popping
    /// stale entries on the way. Returns `(clock, rank, shard)`.
    fn min_ready(&self, s: &mut Sched) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        for sh in 0..s.heaps.len() {
            while let Some(&Reverse((c, r))) = s.heaps[sh].peek() {
                if s.ranks[r].status == Status::Ready && self.clocks[r].load(Ordering::Relaxed) == c
                {
                    if best.is_none_or(|(bc, br, _)| (c, r) < (bc, br)) {
                        best = Some((c, r, sh));
                    }
                    break;
                }
                s.heaps[sh].pop();
            }
        }
        best
    }

    /// Record a fatal condition and wake every sleeper (rank condvars
    /// and lane waiters) so all threads can observe it and unwind.
    fn poison(&self, s: &mut Sched, e: SimError) {
        if s.poisoned.is_none() {
            s.poisoned = Some(e);
        }
        self.aborted.store(true, Ordering::Relaxed);
        for cv in &self.cvs {
            cv.notify_all();
        }
        self.lanes_cv.notify_all();
    }

    /// Grant the token to the minimum-key grantable rank. Must be
    /// called with the sched lock held and `running == None`.
    ///
    /// The grant key is the world's LBTS: it is ≤ every shard
    /// watermark, and detached measured computations gate it — a rank
    /// computing with floor key `f` rejoins at a key ≥ `f`, so only
    /// keys strictly below `f` may run meanwhile (the serial schedule
    /// would have run them before the computing rank's next tenure no
    /// matter how long the computation charges).
    ///
    /// When no rank is grantable and nothing is computing, the world is
    /// quiescent: before declaring a deadlock, fire the earliest armed
    /// event on a blocked rank — an ft-wait deadline (the failure
    /// detector's lease timer) or a scheduled crash — by advancing that
    /// rank's clock to the event time and making it Ready. Healthy runs
    /// never reach this branch (some rank is always runnable), which is
    /// what keeps an armed-but-idle detector free: its deadlines are
    /// bookkeeping until the moment the world would otherwise hang.
    fn grant(&self, s: &mut Sched) {
        debug_assert!(s.running.is_none());
        loop {
            if let Some((c, r, sh)) = self.min_ready(s) {
                if s.computing.first().is_some_and(|&floor| floor < (c, r)) {
                    // A detached computation must rejoin first; its
                    // rejoin calls grant again.
                    return;
                }
                s.heaps[sh].pop();
                s.running = Some(r);
                self.cvs[r].notify_one();
                return;
            }
            if s.active == 0 || s.poisoned.is_some() {
                return;
            }
            if !s.computing.is_empty() {
                // Not quiescent: a detached computation is in flight
                // and will rejoin. Deadline firing must wait for every
                // shard's watermark to clear.
                return;
            }
            // Quiescent. Earliest pending timer or crash on a blocked
            // rank, if any (ties: lowest rank).
            let mut ev: Option<(u64, usize)> = None;
            for (r, st) in s.ranks.iter().enumerate() {
                if st.status != Status::Blocked {
                    continue;
                }
                let mut t = st.deadline;
                if let Some((ct, _)) = self.crash.fate(r) {
                    t = Some(t.map_or(ct.0, |d| d.min(ct.0)));
                }
                if let Some(t) = t {
                    if ev.is_none_or(|(bt, _)| t < bt) {
                        ev = Some((t, r));
                    }
                }
            }
            if let Some((t, r)) = ev {
                let c = self.clocks[r].load(Ordering::Relaxed);
                self.clocks[r].store(c.max(t), Ordering::Relaxed);
                self.mark_ready(s, r, "timer");
                continue; // re-run the min-key pick
            }
            // Every live rank is Blocked with nothing armed: deadlock.
            let (report, ranks) = self.deadlock_report(s);
            self.poison(s, SimError::Deadlock { report, ranks });
            return;
        }
    }

    /// Render the all-blocked report. Small worlds get the historical
    /// one-line-per-rank form; above [`REPORT_FULL_CAP`] live ranks the
    /// report is capped to a block-reason histogram plus the
    /// earliest-clock offenders and any corpses, and the diag callback
    /// runs only for the offenders.
    fn deadlock_report(&self, s: &Sched) -> (String, Vec<RankDiag>) {
        let live: Vec<usize> = (0..s.ranks.len())
            .filter(|&r| s.ranks[r].status != Status::Done)
            .collect();
        let diag_of = |r: usize| -> RankDiag {
            let detail = self.diag.as_ref().map(|d| d(r)).unwrap_or_default();
            RankDiag {
                rank: r,
                status: format!("{:?}", s.ranks[r].status),
                reason: s.ranks[r].reason,
                clock_ns: self.clocks[r].load(Ordering::Relaxed),
                detail,
            }
        };
        let line = |d: &RankDiag| {
            let mut l = format!(
                "  rank {}: {} ({}) at t={}ns",
                d.rank, d.status, d.reason, d.clock_ns
            );
            if !d.detail.is_empty() {
                l.push_str(&format!(" [{}]", d.detail));
            }
            l.push('\n');
            l
        };
        if live.len() <= REPORT_FULL_CAP {
            let mut msg = String::from("virtual-time deadlock; all ranks blocked:\n");
            let ranks: Vec<RankDiag> = live.iter().map(|&r| diag_of(r)).collect();
            for d in &ranks {
                msg.push_str(&line(d));
            }
            return (msg, ranks);
        }
        // Capped form: histogram of (status, reason), then offenders.
        let mut msg = format!(
            "virtual-time deadlock; all {} live ranks blocked (report capped):\n  block reasons:\n",
            live.len()
        );
        let mut hist: BTreeMap<(&'static str, BlockReason), usize> = BTreeMap::new();
        for &r in &live {
            let status: &'static str = match s.ranks[r].status {
                Status::Ready => "Ready",
                Status::Running => "Running",
                Status::Blocked => "Blocked",
                Status::Computing => "Computing",
                Status::Done => "Done",
                Status::Dead => "Dead",
            };
            *hist.entry((status, s.ranks[r].reason)).or_default() += 1;
        }
        for ((status, reason), n) in &hist {
            msg.push_str(&format!("    {n} x {status} ({reason})\n"));
        }
        // Offenders: the corpses survivors may be stuck on, then the
        // earliest-clock live ranks (the causally first stuck waits).
        let mut offenders: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&r| s.ranks[r].status == Status::Dead)
            .take(REPORT_OFFENDERS)
            .collect();
        let mut by_clock: Vec<(u64, usize)> = live
            .iter()
            .copied()
            .filter(|&r| s.ranks[r].status != Status::Dead)
            .map(|r| (self.clocks[r].load(Ordering::Relaxed), r))
            .collect();
        by_clock.sort_unstable();
        offenders.extend(by_clock.iter().take(REPORT_OFFENDERS).map(|&(_, r)| r));
        let ranks: Vec<RankDiag> = offenders.iter().map(|&r| diag_of(r)).collect();
        msg.push_str(&format!(
            "  offenders (dead + {REPORT_OFFENDERS} earliest clocks):\n"
        ));
        for d in &ranks {
            msg.push_str(&line(d));
        }
        (msg, ranks)
    }

    /// Park until this rank holds the token. If the rank's clock has
    /// reached its scheduled death, the rank dies here instead of
    /// running: bookkeeping under the lock, then a sentinel unwind out
    /// of the rank closure ([`CrashUnwind`], swallowed by `run_impl`).
    fn wait_for_token(&self, rank: usize) {
        let mut s = self.sched.lock();
        loop {
            if let Some(p) = &s.poisoned {
                let p = p.clone();
                drop(s);
                panic!("simulation aborted: {p}");
            }
            if s.running == Some(rank) {
                if let Some((t, kind)) = self.crash.fate(rank) {
                    if self.clocks[rank].load(Ordering::Relaxed) >= t.0
                        && self.deaths[rank].load(Ordering::Relaxed) == u64::MAX
                    {
                        self.deaths[rank].store(t.0, Ordering::Relaxed);
                        s.ranks[rank].status = Status::Dead;
                        s.ranks[rank].reason = kind.label();
                        s.ranks[rank].deadline = None;
                        s.active -= 1;
                        s.running = None;
                        self.grant(&mut s);
                        drop(s);
                        SILENT_UNWIND.with(|f| f.set(true));
                        std::panic::panic_any(CrashUnwind);
                    }
                }
                s.ranks[rank].status = Status::Running;
                s.ranks[rank].deadline = None;
                return;
            }
            if s.running.is_none() {
                self.grant(&mut s);
                if s.running.is_some() {
                    continue;
                }
                // grant declined (a computing floor gates every
                // candidate, or a rejoin is pending): park — the
                // rejoining rank re-grants and notifies.
            }
            self.cvs[rank].wait(&mut s);
        }
    }

    /// Release the token with this rank in `status`, then re-acquire it
    /// if `status` is Ready/Blocked (Done releases permanently).
    fn release(&self, rank: usize, status: Status, reason: BlockReason) {
        self.release_with_deadline(rank, status, reason, None);
    }

    /// [`Shared::release`] with an armed wake-up deadline (only
    /// meaningful with `Status::Blocked`): if the world quiesces, the
    /// scheduler advances this rank to the deadline and wakes it.
    fn release_with_deadline(
        &self,
        rank: usize,
        status: Status,
        reason: BlockReason,
        deadline: Option<u64>,
    ) {
        self.yields.fetch_add(1, Ordering::Relaxed);
        let mut s = self.sched.lock();
        match status {
            Status::Ready => self.mark_ready(&mut s, rank, reason),
            Status::Done => {
                s.ranks[rank].status = Status::Done;
                s.ranks[rank].reason = reason;
                s.ranks[rank].deadline = None;
                s.active -= 1;
                self.finished[rank].store(true, Ordering::Relaxed);
            }
            _ => {
                s.ranks[rank].status = status;
                s.ranks[rank].reason = reason;
                s.ranks[rank].deadline = deadline;
            }
        }
        s.running = None;
        self.grant(&mut s);
    }

    /// Begin a detached measured computation: give up the token with a
    /// conservative floor at the current key. Counts as this rank's
    /// yield for the segment (parity with the serial `advance`).
    fn detach_measured_begin(&self, rank: usize) {
        self.yields.fetch_add(1, Ordering::Relaxed);
        let mut s = self.sched.lock();
        s.ranks[rank].status = Status::Computing;
        s.ranks[rank].reason = "computing";
        s.ranks[rank].deadline = None;
        let c = self.clocks[rank].load(Ordering::Relaxed);
        s.computing.insert((c, rank));
        s.running = None;
        self.grant(&mut s);
    }

    /// Rejoin after a detached measured computation: lift the floor,
    /// move the clock to `new_clock`, and contend for the token again.
    fn detach_measured_end(&self, rank: usize, new_clock: u64) {
        {
            let mut s = self.sched.lock();
            let c = self.clocks[rank].load(Ordering::Relaxed);
            s.computing.remove(&(c, rank));
            self.clocks[rank].store(new_clock.max(c), Ordering::Relaxed);
            self.mark_ready(&mut s, rank, "computed");
            if s.running.is_none() {
                self.grant(&mut s);
            }
        }
        self.wait_for_token(rank);
    }
}

/// Holds one of the engine's `shards` detached-compute lanes; dropping
/// it returns the lane (also on unwind, so a panicking closure cannot
/// leak a lane).
struct LaneGuard<'a>(&'a Shared);

impl<'a> LaneGuard<'a> {
    /// Take a lane, parking until one frees up. Returns `None` if the
    /// world aborted while waiting — the caller must then re-enter the
    /// scheduler (which surfaces the abort) instead of computing.
    fn acquire(shared: &'a Shared) -> Option<LaneGuard<'a>> {
        let mut free = shared.lanes.lock();
        loop {
            if shared.aborted.load(Ordering::Relaxed) {
                return None;
            }
            if *free > 0 {
                *free -= 1;
                return Some(LaneGuard(shared));
            }
            shared.lanes_cv.wait(&mut free);
        }
    }
}

impl Drop for LaneGuard<'_> {
    fn drop(&mut self) {
        let mut free = self.0.lanes.lock();
        *free += 1;
        self.0.lanes_cv.notify_one();
    }
}

/// The engine owning a set of simulated ranks.
///
/// Construct with [`Engine::new`], then call [`Engine::run`].
pub struct Engine {
    n_ranks: usize,
    shards: usize,
    time_scale: f64,
    tracer: Option<Tracer>,
    metrics: Option<Metrics>,
    diag: Option<DiagFn>,
    crash: CrashPlan,
}

impl Engine {
    /// An engine for `n_ranks` simulated processes.
    pub fn new(n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "need at least one rank");
        Engine {
            n_ranks,
            shards: 1,
            time_scale: 1.0,
            tracer: None,
            metrics: None,
            diag: None,
            crash: CrashPlan::new(),
        }
    }

    /// Partition the ranks into `s` scheduler shards and allow up to
    /// `s` detached computations ([`SimHandle::charge_overlapped`],
    /// [`SimHandle::charge_measured`]) to run concurrently on host
    /// cores. Clamped to `[1, n_ranks]`. Virtual results are
    /// bit-identical for every `s`: sharding changes wall-clock only.
    pub fn shards(mut self, s: usize) -> Self {
        self.shards = s.max(1);
        self
    }

    /// Install a process-level fault schedule. Ranks named by the plan
    /// stop executing at their scheduled virtual times; use
    /// [`Engine::try_run_ft`] to run a world where deaths are expected
    /// ([`Engine::run`]/[`Engine::try_run`] treat a missing rank
    /// result as a bug).
    pub fn crash_plan(mut self, plan: CrashPlan) -> Self {
        self.crash = plan;
        self
    }

    /// Set the multiplier applied to measured wall time by
    /// [`SimHandle::charge_measured`] (e.g. to model a slower CPU).
    pub fn time_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.time_scale = scale;
        self
    }

    /// Install a trace collector. `block_on` park intervals become
    /// per-rank wait spans, and [`RunOutcome::trace`] carries the
    /// final [`TraceReport`]. Without a collector the hooks cost one
    /// `Option` check each (and nothing at all when the `trace`
    /// feature is disabled).
    pub fn tracer(mut self, t: Tracer) -> Self {
        self.tracer = Some(t);
        self
    }

    /// Install a metrics recorder. `block_on` park intervals become
    /// wait-latency histogram samples, higher layers reach the
    /// recorder through [`SimHandle::metrics`], and
    /// [`RunOutcome::metrics`] carries the merged
    /// [`MetricsSnapshot`] taken at end time. Recording never moves a
    /// virtual clock, so results are bit-identical with or without a
    /// recorder installed.
    pub fn metrics(mut self, m: Metrics) -> Self {
        self.metrics = Some(m);
        self
    }

    /// Install a per-rank diagnostic callback whose output is appended
    /// to the all-blocked deadlock report. The callback runs with the
    /// scheduler lock held, so it must not yield or block; use
    /// `try_lock` on any shared state it inspects.
    pub fn diagnostics(mut self, f: impl Fn(usize) -> String + Send + Sync + 'static) -> Self {
        self.diag = Some(Arc::new(f));
        self
    }

    /// Run `f(rank, handle)` on every rank to completion and return the
    /// per-rank results in rank order, plus engine statistics.
    ///
    /// Panics (with the original message) if any rank panics or if the
    /// simulation deadlocks. Chaos tests that must observe those
    /// conditions as data use [`Engine::try_run`] instead.
    pub fn run<T, F>(&self, f: F) -> RunOutcome<T>
    where
        T: Send,
        F: Fn(&SimHandle) -> T + Sync,
    {
        match self.run_impl(f, true) {
            Ok(out) => out.expect_all(),
            Err(e) => panic!("simulation aborted: {e}"),
        }
    }

    /// Like [`Engine::run`], but surfaces deadlocks and rank panics as
    /// a typed [`SimError`] instead of panicking: a deadlock returns
    /// [`SimError::Deadlock`] carrying the per-rank queue diagnostics,
    /// and a rank panic returns [`SimError::RankPanic`] with the first
    /// panic's message.
    pub fn try_run<T, F>(&self, f: F) -> Result<RunOutcome<T>, SimError>
    where
        T: Send,
        F: Fn(&SimHandle) -> T + Sync,
    {
        self.run_impl(f, false).map(FtOutcome::expect_all)
    }

    /// Fault-tolerant run: like [`Engine::try_run`], but ranks killed
    /// by the installed [`Engine::crash_plan`] are expected — their
    /// results come back as `None` alongside their death records,
    /// instead of aborting the outcome.
    pub fn try_run_ft<T, F>(&self, f: F) -> Result<FtOutcome<T>, SimError>
    where
        T: Send,
        F: Fn(&SimHandle) -> T + Sync,
    {
        self.run_impl(f, false)
    }

    fn run_impl<T, F>(&self, f: F, propagate_panics: bool) -> Result<FtOutcome<T>, SimError>
    where
        T: Send,
        F: Fn(&SimHandle) -> T + Sync,
    {
        if !self.crash.is_empty() {
            install_silent_hook();
        }
        let shards = self.shards.clamp(1, self.n_ranks);
        let shard_size = self.n_ranks.div_ceil(shards);
        let mut heaps: Vec<BinaryHeap<Reverse<(u64, usize)>>> =
            (0..shards).map(|_| BinaryHeap::new()).collect();
        for r in 0..self.n_ranks {
            heaps[r / shard_size].push(Reverse((0, r)));
        }
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                ranks: (0..self.n_ranks)
                    .map(|_| RankState {
                        status: Status::Ready,
                        reason: "startup",
                        deadline: None,
                    })
                    .collect(),
                heaps,
                computing: BTreeSet::new(),
                running: None,
                active: self.n_ranks,
                poisoned: None,
            }),
            cvs: (0..self.n_ranks).map(|_| Condvar::new()).collect(),
            clocks: (0..self.n_ranks).map(|_| AtomicU64::new(0)).collect(),
            shards,
            shard_size,
            lanes: Mutex::new(shards),
            lanes_cv: Condvar::new(),
            aborted: AtomicBool::new(false),
            time_scale: self.time_scale,
            yields: AtomicU64::new(0),
            notifies: AtomicU64::new(0),
            tracer: self.tracer.clone(),
            metrics: self.metrics.clone(),
            diag: self.diag.clone(),
            pools: (0..self.n_ranks).map(|_| Mutex::new(None)).collect(),
            buf_pool: BufferPool::new(),
            crash: self.crash.clone(),
            deaths: (0..self.n_ranks)
                .map(|_| AtomicU64::new(u64::MAX))
                .collect(),
            finished: (0..self.n_ranks).map(|_| AtomicBool::new(false)).collect(),
        });

        let mut results: Vec<Option<T>> = (0..self.n_ranks).map(|_| None).collect();
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = results
                .iter_mut()
                .enumerate()
                .map(|(rank, slot)| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let handle = SimHandle {
                            shared: Arc::clone(&shared),
                            rank,
                            n_ranks: self.n_ranks,
                        };
                        let out = catch_unwind(AssertUnwindSafe(|| {
                            shared.wait_for_token(rank);
                            f(&handle)
                        }));
                        match out {
                            Ok(v) => {
                                *slot = Some(v);
                                shared.release(rank, Status::Done, "finished");
                            }
                            Err(payload) if payload.is::<CrashUnwind>() => {
                                // Deliberate death: bookkeeping already
                                // done under the lock in wait_for_token.
                                SILENT_UNWIND.with(|fl| fl.set(false));
                            }
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                {
                                    let mut s = shared.sched.lock();
                                    // A detached closure may be the
                                    // panic source: drop any compute
                                    // floor so the gate cannot wedge,
                                    // and only clear the token if this
                                    // rank actually holds it.
                                    s.computing.retain(|&(_, r)| r != rank);
                                    if !matches!(s.ranks[rank].status, Status::Done | Status::Dead)
                                    {
                                        s.ranks[rank].status = Status::Done;
                                        s.active -= 1;
                                    }
                                    if s.running == Some(rank) {
                                        s.running = None;
                                    }
                                    shared
                                        .poison(&mut s, SimError::RankPanic { rank, message: msg });
                                }
                                if propagate_panics {
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        }
                    })
                })
                .collect();
            let mut first_panic = None;
            for h in handles {
                if let Err(p) = h.join() {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
            if let Some(p) = first_panic {
                if propagate_panics {
                    std::panic::resume_unwind(p);
                }
            }
        });

        if let Some(e) = shared.sched.lock().poisoned.clone() {
            return Err(e);
        }
        let end_time = VTime(
            shared
                .clocks
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .max()
                .unwrap_or(0),
        );
        let deaths = (0..self.n_ranks)
            .map(|r| {
                let t = shared.deaths[r].load(Ordering::Relaxed);
                if t == u64::MAX {
                    None
                } else {
                    let kind = self
                        .crash
                        .fate(r)
                        .map(|(_, k)| k)
                        .unwrap_or(CrashKind::Crash);
                    Some((VTime(t), kind))
                }
            })
            .collect();
        Ok(FtOutcome {
            results,
            deaths,
            end_time,
            yields: shared.yields.load(Ordering::Relaxed),
            notifies: shared.notifies.load(Ordering::Relaxed),
            trace: shared.tracer.as_ref().map(|t| t.take_report()),
            metrics: shared.metrics.as_ref().map(|m| m.snapshot(end_time.0)),
        })
    }
}

/// Results and statistics of one simulation run.
#[derive(Debug)]
pub struct RunOutcome<T> {
    /// Per-rank return values, in rank order.
    pub results: Vec<T>,
    /// The largest virtual clock reached by any rank.
    pub end_time: VTime,
    /// Scheduler yield operations performed.
    pub yields: u64,
    /// Notify operations performed.
    pub notifies: u64,
    /// Trace data, when a collector was installed via [`Engine::tracer`].
    pub trace: Option<TraceReport>,
    /// Metrics snapshot (merged at `end_time`), when a recorder was
    /// installed via [`Engine::metrics`].
    pub metrics: Option<MetricsSnapshot>,
}

/// Results of a fault-tolerant run ([`Engine::try_run_ft`]): ranks
/// killed by the crash plan come back with no result and a death
/// record instead of aborting the world.
#[derive(Debug)]
pub struct FtOutcome<T> {
    /// Per-rank return values in rank order; `None` for ranks that
    /// died before their closure returned.
    pub results: Vec<Option<T>>,
    /// Executed deaths in rank order: `Some((time, kind))` for ranks
    /// the crash plan actually killed.
    pub deaths: Vec<Option<(VTime, CrashKind)>>,
    /// The largest virtual clock reached by any rank.
    pub end_time: VTime,
    /// Scheduler yield operations performed.
    pub yields: u64,
    /// Notify operations performed.
    pub notifies: u64,
    /// Trace data, when a collector was installed via [`Engine::tracer`].
    pub trace: Option<TraceReport>,
    /// Metrics snapshot (merged at `end_time`), when a recorder was
    /// installed via [`Engine::metrics`].
    pub metrics: Option<MetricsSnapshot>,
}

impl<T> FtOutcome<T> {
    /// Convert into a [`RunOutcome`], requiring every rank to have
    /// survived. Panics if any rank died — [`Engine::run`] /
    /// [`Engine::try_run`] use this, so a crash plan on those entry
    /// points is a usage bug with a clear message.
    fn expect_all(self) -> RunOutcome<T> {
        RunOutcome {
            results: self
                .results
                .into_iter()
                .map(|r| r.expect("rank died under a crash plan; use try_run_ft"))
                .collect(),
            end_time: self.end_time,
            yields: self.yields,
            notifies: self.notifies,
            trace: self.trace,
            metrics: self.metrics,
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

/// A rank's interface to the virtual clock and the scheduler.
pub struct SimHandle {
    shared: Arc<Shared>,
    rank: usize,
    n_ranks: usize,
}

impl SimHandle {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total rank count.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The engine's shard count (= detached-compute lane count).
    pub fn shards(&self) -> usize {
        self.shared.shards
    }

    /// The shard `rank` belongs to (contiguous blocks of
    /// `ceil(n_ranks / shards)` ranks).
    pub fn shard_of(&self, rank: usize) -> usize {
        self.shared.shard_of(rank)
    }

    /// The smallest key at which `shard` could next interact with
    /// simulation state: the minimum clock over its `Ready` /
    /// `Running` ranks and detached-compute floors. `None` means the
    /// shard is entirely parked (or finished) — it can only be woken
    /// by another shard's tenure, at that tenure's (larger) key.
    pub fn shard_watermark(&self, shard: usize) -> Option<VTime> {
        let s = self.shared.sched.lock();
        let lo = shard * self.shared.shard_size;
        let hi = (lo + self.shared.shard_size).min(self.n_ranks);
        (lo..hi)
            .filter(|&r| {
                matches!(
                    s.ranks[r].status,
                    Status::Ready | Status::Running | Status::Computing
                )
            })
            .map(|r| self.shared.clocks[r].load(Ordering::Relaxed))
            .min()
            .map(VTime)
    }

    /// The world's LBTS from this tenure's viewpoint: the minimum over
    /// every shard's watermark and this rank's own clock. No future
    /// state interaction — in particular no message transmission — can
    /// happen at a smaller virtual time, so a message sent now arrives
    /// no earlier than `lbts() + lookahead` (the fabric's minimum link
    /// latency).
    pub fn lbts(&self) -> VTime {
        let s = self.shared.sched.lock();
        let mut lb = self.shared.clocks[self.rank].load(Ordering::Relaxed);
        for (r, st) in s.ranks.iter().enumerate() {
            if matches!(
                st.status,
                Status::Ready | Status::Running | Status::Computing
            ) {
                lb = lb.min(self.shared.clocks[r].load(Ordering::Relaxed));
            }
        }
        VTime(lb)
    }

    /// This rank's current virtual time.
    pub fn now(&self) -> VTime {
        VTime(self.shared.clocks[self.rank].load(Ordering::Relaxed))
    }

    /// Read another rank's clock (diagnostics only).
    pub fn clock_of(&self, rank: usize) -> VTime {
        VTime(self.shared.clocks[rank].load(Ordering::Relaxed))
    }

    #[inline]
    fn set_clock(&self, t: VTime) {
        self.shared.clocks[self.rank].store(t.0, Ordering::Relaxed);
    }

    /// The target clock for an advance to `t`: never backwards, and a
    /// doomed rank never executes past its scheduled death — the
    /// advance clamps to the death instant, and re-acquiring the token
    /// at that clock kills the rank (see `wait_for_token`).
    fn clamped_target(&self, t: VTime) -> VTime {
        let mut new_t = self.now().max(t);
        if let Some((ct, _)) = self.shared.crash.fate(self.rank) {
            if new_t >= ct && self.shared.deaths[self.rank].load(Ordering::Relaxed) == u64::MAX {
                new_t = ct;
            }
        }
        new_t
    }

    /// Charge `d` of virtual compute time and yield.
    pub fn advance(&self, d: VDur) {
        self.advance_to(self.now() + d);
    }

    /// Move the clock forward to `t` (no-op move if already past) and
    /// yield so lower-clock ranks can run.
    pub fn advance_to(&self, t: VTime) {
        self.set_clock(self.clamped_target(t));
        self.shared.release(self.rank, Status::Ready, "advance");
        self.shared.wait_for_token(self.rank);
    }

    /// Charge `d` of *modeled* compute time and run `f` — real host
    /// work whose virtual cost is already known (a calibrated crypto
    /// curve, a kernel cost model) — overlapped with other ranks.
    ///
    /// The clock moves to `now + d` and the token is released before
    /// `f` runs, so tenures with keys below `(now + d, rank)` — exactly
    /// the ones the serial schedule would run before this rank's next
    /// tenure — proceed on other host cores meanwhile. `f` runs on this
    /// rank's own thread and MUST NOT touch simulation state (no
    /// sends, notifies, trace emission, or pool allocation; allocate
    /// before detaching): under that contract the tenure sequence, and
    /// with it every virtual result, is bit-identical to `shards = 1`.
    /// At `shards = 1` this is exactly `f()` followed by `advance(d)`.
    pub fn charge_overlapped<T>(&self, d: VDur, f: impl FnOnce() -> T) -> T {
        if self.shared.shards == 1 {
            let out = f();
            self.advance(d);
            return out;
        }
        self.set_clock(self.clamped_target(self.now() + d));
        self.shared.release(self.rank, Status::Ready, "compute");
        let out = match LaneGuard::acquire(&self.shared) {
            Some(_lane) => f(),
            None => {
                // Aborted while waiting for a lane: re-enter the
                // scheduler, which surfaces the poisoned error.
                self.shared.wait_for_token(self.rank);
                unreachable!("wait_for_token returns on a poisoned world");
            }
        };
        self.shared.wait_for_token(self.rank);
        out
    }

    /// Run `f`, measure its wall time (a per-thread `Instant` delta —
    /// valid even while other ranks execute concurrently), charge it
    /// (scaled by the engine's `time_scale`) as virtual compute, and
    /// return its result.
    ///
    /// With `shards > 1` the closure runs detached under a
    /// conservative floor: only tenures with keys strictly below this
    /// rank's current key proceed meanwhile (the charge is unknown
    /// until `f` finishes, so the floor cannot be raised the way
    /// [`Self::charge_overlapped`] raises it). Measured charges are
    /// inherently wall-clock-dependent, so unlike modeled charges they
    /// vary run to run — sharding adds contention jitter but no new
    /// nondeterminism class.
    pub fn charge_measured<T>(&self, f: impl FnOnce() -> T) -> T {
        if self.shared.shards == 1 {
            let start = Instant::now();
            let out = f();
            let elapsed = start.elapsed().as_nanos() as f64 * self.shared.time_scale;
            self.advance(VDur(elapsed as u64));
            return out;
        }
        self.shared.detach_measured_begin(self.rank);
        let (out, elapsed) = match LaneGuard::acquire(&self.shared) {
            Some(_lane) => {
                let start = Instant::now();
                let out = f();
                (
                    out,
                    start.elapsed().as_nanos() as f64 * self.shared.time_scale,
                )
            }
            None => {
                self.shared.wait_for_token(self.rank);
                unreachable!("wait_for_token returns on a poisoned world");
            }
        };
        let target = self.clamped_target(self.now() + VDur(elapsed as u64));
        self.shared.detach_measured_end(self.rank, target.0);
        out
    }

    /// Park this rank until `check` produces a completion.
    ///
    /// `check` is evaluated immediately and after every
    /// [`notify_rank`](Self::notify_rank) aimed at this rank; it returns
    /// `Some((ready_at, value))` when the awaited condition holds, where
    /// `ready_at` is the virtual time at which it became true (the clock
    /// jumps to `max(now, ready_at)`).
    ///
    /// Exclusive tenure execution makes the check-then-park sequence
    /// atomic with respect to all other ranks, so no wakeup can be
    /// lost.
    pub fn block_on<T>(
        &self,
        reason: &'static str,
        mut check: impl FnMut() -> Option<(VTime, T)>,
    ) -> T {
        let entered = self.now();
        loop {
            if let Some((t, v)) = check() {
                self.advance_to(t);
                if let Some(tracer) = &self.shared.tracer {
                    // Virtual wait = entry to completion, whether the
                    // rank actually parked or the condition was already
                    // satisfied at a future timestamp.
                    tracer.wait_span(self.rank, entered.0, self.now().0, reason);
                }
                if let Some(m) = &self.shared.metrics {
                    let now = self.now().0;
                    m.record(self.rank, Metric::Wait, reason, -1, 0, now, now - entered.0);
                }
                return v;
            }
            self.shared.release(self.rank, Status::Blocked, reason);
            self.shared.wait_for_token(self.rank);
        }
    }

    /// Park this rank until `check` produces a completion **or** the
    /// virtual clock reaches `deadline` with the whole world quiescent
    /// (every other live rank parked too) — the failure detector's
    /// lease timer. Returns `None` when the deadline fired.
    ///
    /// The timer is conservative: it can only fire when no rank is
    /// runnable *and no shard has a detached computation in flight*
    /// (every shard watermark must clear first), so on a healthy run
    /// where traffic keeps arriving it costs nothing — no wire bytes,
    /// no virtual time, no wake-ups. A completion always beats the
    /// timer (data wins ties).
    pub fn block_on_deadline<T>(
        &self,
        reason: &'static str,
        deadline: VTime,
        mut check: impl FnMut() -> Option<(VTime, T)>,
    ) -> Option<T> {
        let entered = self.now();
        let finish = |got: bool| {
            if let Some(tracer) = &self.shared.tracer {
                tracer.wait_span(self.rank, entered.0, self.now().0, reason);
            }
            if let Some(m) = &self.shared.metrics {
                let now = self.now().0;
                m.record(self.rank, Metric::Wait, reason, -1, 0, now, now - entered.0);
            }
            got
        };
        loop {
            if let Some((t, v)) = check() {
                self.advance_to(t);
                finish(true);
                return Some(v);
            }
            if self.now() >= deadline {
                finish(false);
                return None;
            }
            self.shared
                .release_with_deadline(self.rank, Status::Blocked, reason, Some(deadline.0));
            self.shared.wait_for_token(self.rank);
        }
    }

    /// Has `target` actually died? Returns the executed death time.
    /// Unlike [`SimHandle::peer_dead`] this reports only deaths the
    /// engine has already carried out, regardless of this rank's
    /// clock — diagnostics, not protocol input.
    pub fn dead_since(&self, target: usize) -> Option<VTime> {
        let t = self.shared.deaths[target].load(Ordering::Relaxed);
        (t != u64::MAX).then_some(VTime(t))
    }

    /// The liveness oracle a probe consults: is `target` dead *as of
    /// this rank's current virtual time*?
    ///
    /// This models the per-node OS daemon a real failure detector
    /// probes (procfs / process lease), not gossip: a live rank is
    /// never reported dead (probes of live peers always answer
    /// "alive", so the detector has zero false positives by
    /// construction), and a rank whose scheduled death lies at or
    /// before this rank's clock is reported dead even if the engine
    /// has not yet parked its coroutine — conservative min-clock
    /// scheduling may let a doomed rank's final pre-death instructions
    /// run in the observer's past, which is causally unobservable.
    /// [`CrashKind`] tells the caller whether the daemon saw the
    /// process exit ([`CrashKind::Crash`] — definitive) or the process
    /// is wedged but still holds its lease ([`CrashKind::Hang`] — the
    /// probe goes unanswered and the detector must count missed
    /// rounds).
    pub fn peer_dead(&self, target: usize) -> Option<(VTime, CrashKind)> {
        let (t, kind) = self.shared.crash.fate(target)?;
        if t > self.now() || self.shared.finished[target].load(Ordering::Relaxed) {
            return None;
        }
        Some((t, kind))
    }

    /// The scheduled fate of `target` under the installed crash plan
    /// (regardless of whether it has executed yet).
    pub fn planned_fate(&self, target: usize) -> Option<(VTime, CrashKind)> {
        self.shared.crash.fate(target)
    }

    /// The trace collector installed on this engine, if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.shared.tracer.as_ref()
    }

    /// The metrics recorder installed on this engine, if any.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.shared.metrics.as_ref()
    }

    /// The engine's measured-time multiplier (see [`Engine::time_scale`]).
    /// Lets callers that schedule measured work on *other* virtual
    /// resources (e.g. a [`crate::cores::CorePool`]) apply the same
    /// scaling as [`Self::charge_measured`] without moving this clock.
    pub fn time_scale(&self) -> f64 {
        self.shared.time_scale
    }

    /// Run `f` against this rank's shared crypto worker pool, growing
    /// it to at least `workers` timelines first.
    ///
    /// The pool is per *rank*, not per communicator: two communicators
    /// on one rank delegate chunk seals/opens to the same physical
    /// cores, so their jobs serialize on the shared busy-until
    /// timelines instead of each modeling a phantom private pool. A
    /// communicator configured for `k` workers should schedule with
    /// [`CorePool::schedule_limited`] and limit `k`.
    pub fn with_core_pool<T>(&self, workers: usize, f: impl FnOnce(&mut CorePool) -> T) -> T {
        let mut guard = self.shared.pools[self.rank].lock();
        let pool = guard.get_or_insert_with(|| CorePool::new(workers.max(1)));
        pool.ensure_workers(workers.max(1));
        f(pool)
    }

    /// The engine-wide [`BufferPool`] backing the zero-copy hot path.
    /// Shared by every rank (buffers travel sender → receiver within
    /// one process); the handle is cheap to clone.
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.shared.buf_pool
    }

    /// Wake `target` if it is parked in [`block_on`](Self::block_on),
    /// causing it to re-evaluate its condition.
    pub fn notify_rank(&self, target: usize) {
        self.shared.notifies.fetch_add(1, Ordering::Relaxed);
        let mut s = self.shared.sched.lock();
        if s.ranks[target].status == Status::Blocked {
            self.shared.mark_ready(&mut s, target, "notified");
            // The waker still holds the token; the target will be
            // considered at the waker's next yield.
        }
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;

    #[test]
    fn clocks_advance_independently() {
        let out = Engine::new(4).run(|h| {
            h.advance(VDur::from_micros((h.rank() as u64 + 1) * 10));
            h.now()
        });
        for (r, t) in out.results.iter().enumerate() {
            assert_eq!(t.as_nanos(), (r as u64 + 1) * 10_000);
        }
        assert_eq!(out.end_time, VTime(40_000));
    }

    #[test]
    fn min_clock_scheduling_orders_events() {
        // Each rank appends (time, rank) to a shared log at staggered
        // times; the log must come out sorted by time.
        let log = PlMutex::new(Vec::new());
        Engine::new(8).run(|h| {
            for step in 0..20u64 {
                h.advance(VDur(100 + (h.rank() as u64 * 37 + step * 13) % 900));
                log.lock().push((h.now().as_nanos(), h.rank()));
            }
        });
        let log = log.into_inner();
        assert_eq!(log.len(), 160);
        for w in log.windows(2) {
            assert!(w[0].0 <= w[1].0, "events out of order: {w:?}");
        }
    }

    #[test]
    fn block_and_notify_ping() {
        // Rank 0 produces a value at t=50us; rank 1 blocks for it.
        let slot: PlMutex<Option<(VTime, u32)>> = PlMutex::new(None);
        let out = Engine::new(2).run(|h| {
            if h.rank() == 0 {
                h.advance(VDur::from_micros(50));
                *slot.lock() = Some((h.now(), 99));
                h.notify_rank(1);
                0
            } else {
                let v = h.block_on("value", || slot.lock().map(|(t, v)| (t, v)));
                assert_eq!(v, 99);
                assert_eq!(h.now(), VTime(50_000));
                v
            }
        });
        assert_eq!(out.results, vec![0, 99]);
    }

    #[test]
    fn deadlock_is_detected() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(2).run(|h| {
                // Both ranks block on a condition nobody completes.
                h.block_on::<()>("never", || None);
            });
        });
        let msg = format!("{:?}", result.unwrap_err().downcast_ref::<String>());
        assert!(msg.contains("deadlock"), "got: {msg}");
    }

    #[test]
    fn deadlock_report_includes_per_rank_diagnostics() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(2)
                .diagnostics(|r| format!("queue-depth-of-{r}=0"))
                .run(|h| {
                    h.advance(VDur(100 * (h.rank() as u64 + 1)));
                    h.block_on::<()>("recv", || None);
                });
        });
        let msg = format!("{:?}", result.unwrap_err().downcast_ref::<String>());
        assert!(msg.contains("deadlock"), "got: {msg}");
        // Every live rank appears with its reason, clock, and the
        // installed diagnostic line.
        assert!(
            msg.contains("rank 0") && msg.contains("rank 1"),
            "got: {msg}"
        );
        assert!(msg.contains("recv"), "got: {msg}");
        assert!(
            msg.contains("queue-depth-of-0=0") && msg.contains("queue-depth-of-1=0"),
            "got: {msg}"
        );
        assert!(
            msg.contains("t=100ns") && msg.contains("t=200ns"),
            "got: {msg}"
        );
    }

    #[test]
    #[cfg(feature = "trace")]
    fn tracer_records_wait_spans() {
        use empi_trace::Cat;
        let slot: PlMutex<Option<(VTime, u32)>> = PlMutex::new(None);
        let out = Engine::new(2).tracer(Tracer::new(2)).run(|h| {
            if h.rank() == 0 {
                h.advance(VDur::from_micros(50));
                *slot.lock() = Some((h.now(), 7));
                h.notify_rank(1);
            } else {
                h.block_on("value", || slot.lock().map(|(t, v)| (t, v)));
            }
        });
        let trace = out.trace.expect("tracer installed");
        assert_eq!(trace.n_ranks, 2);
        // Rank 1 waited from t=0 to t=50us for rank 0's value.
        assert_eq!(trace.per_rank[1].wait_ns, 50_000);
        assert_eq!(trace.per_rank[0].wait_ns, 0);
        let span = trace
            .events
            .iter()
            .find(|e| e.cat == Cat::Wait)
            .expect("wait span recorded");
        assert_eq!(span.name, "value");
        assert_eq!(span.tid, 1);
        assert_eq!(span.dur_ns, 50_000);
    }

    #[test]
    fn try_run_surfaces_deadlock_as_typed_error() {
        let err = Engine::new(2)
            .diagnostics(|r| format!("q{r}=0"))
            .try_run(|h| {
                h.advance(VDur(50 * (h.rank() as u64 + 1)));
                h.block_on::<()>("recv", || None);
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { report, ranks } => {
                assert!(report.contains("deadlock"), "got: {report}");
                assert_eq!(ranks.len(), 2);
                assert_eq!(ranks[0].reason, "recv");
                assert_eq!(ranks[0].clock_ns, 50);
                assert_eq!(ranks[1].clock_ns, 100);
                assert!(ranks[1].detail.contains("q1=0"), "got: {:?}", ranks[1]);
            }
            e => panic!("expected deadlock, got {e}"),
        }
    }

    #[test]
    fn try_run_surfaces_rank_panic_as_typed_error() {
        let err = Engine::new(2)
            .try_run(|h| {
                if h.rank() == 1 {
                    panic!("chaos strikes");
                }
                h.block_on::<()>("forever", || None);
            })
            .unwrap_err();
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 1);
                assert!(message.contains("chaos strikes"), "got: {message}");
            }
            e => panic!("expected rank panic, got {e}"),
        }
    }

    #[test]
    fn try_run_success_matches_run() {
        let out = Engine::new(3)
            .try_run(|h| {
                h.advance(VDur(10));
                h.rank()
            })
            .expect("clean run");
        assert_eq!(out.results, vec![0, 1, 2]);
        assert_eq!(out.end_time, VTime(10));
    }

    #[test]
    fn rank_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(3).run(|h| {
                if h.rank() == 1 {
                    panic!("boom at rank 1");
                }
                // Others block forever; the panic must still unwind them.
                h.block_on::<()>("waiting forever", || None);
            });
        });
        assert!(result.is_err());
    }

    #[test]
    fn charge_measured_moves_clock() {
        let out = Engine::new(1).run(|h| {
            let before = h.now();
            let x = h.charge_measured(|| (0..10_000u64).sum::<u64>());
            assert_eq!(x, 49_995_000);
            h.now().since(before)
        });
        assert!(out.results[0] > VDur::ZERO);
    }

    #[test]
    fn time_scale_multiplies_measured_time() {
        let busy = || {
            let mut acc = 0u64;
            for i in 0..200_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        };
        let t1 = Engine::new(1)
            .run(|h| {
                h.charge_measured(busy);
                h.now()
            })
            .results[0];
        let t10 = Engine::new(1)
            .time_scale(10.0)
            .run(|h| {
                h.charge_measured(busy);
                h.now()
            })
            .results[0];
        // Allow generous jitter; the scaled run must be clearly longer.
        assert!(t10.as_nanos() > t1.as_nanos() * 3, "t1={t1} t10={t10}");
    }

    #[test]
    fn many_ranks_many_yields() {
        let out = Engine::new(32).run(|h| {
            for _ in 0..50 {
                h.advance(VDur(10));
            }
            h.now()
        });
        assert!(out.results.iter().all(|t| *t == VTime(500)));
        assert!(out.yields >= 32 * 50);
    }

    #[test]
    fn crash_plan_kills_rank_and_survivors_finish() {
        let plan = CrashPlan::new().crash_at(1, VTime(100));
        let out = Engine::new(3)
            .crash_plan(plan)
            .try_run_ft(|h| {
                // Everyone tries to compute past t=100; rank 1 never
                // makes it.
                for _ in 0..10 {
                    h.advance(VDur(20));
                }
                h.now()
            })
            .expect("survivors complete");
        assert_eq!(out.results[0], Some(VTime(200)));
        assert_eq!(out.results[1], None, "rank 1 died, no result");
        assert_eq!(out.results[2], Some(VTime(200)));
        assert_eq!(out.deaths[1], Some((VTime(100), CrashKind::Crash)));
        assert!(out.deaths[0].is_none() && out.deaths[2].is_none());
    }

    #[test]
    fn doomed_rank_clock_clamps_at_death_time() {
        // A single big advance across the death instant must not let
        // the rank act "after" dying.
        let plan = CrashPlan::new().crash_at(0, VTime(50));
        let reached = PlMutex::new(VTime(0));
        let out = Engine::new(2)
            .crash_plan(plan)
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    h.advance(VDur::from_micros(1)); // 1000ns >> 50ns
                    *reached.lock() = h.now(); // unreachable
                }
                h.advance(VDur(10));
            })
            .expect("run completes");
        assert_eq!(out.deaths[0], Some((VTime(50), CrashKind::Crash)));
        assert_eq!(*reached.lock(), VTime(0), "rank 0 executed past death");
        assert_eq!(out.results[1], Some(()));
    }

    #[test]
    fn deadline_fires_when_world_quiesces() {
        // Rank 1 dies; rank 0 waits on it with a lease deadline. The
        // wait must time out at exactly the deadline instead of
        // deadlocking the world.
        let plan = CrashPlan::new().crash_at(1, VTime(50));
        let out = Engine::new(2)
            .crash_plan(plan)
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    let got = h.block_on_deadline::<()>("lease", VTime(500), || None);
                    assert!(got.is_none(), "nothing could complete this wait");
                    h.now()
                } else {
                    h.block_on::<()>("never", || None); // dies at t=50
                    unreachable!()
                }
            })
            .expect("deadline resolves the wait");
        assert_eq!(out.results[0], Some(VTime(500)));
        assert_eq!(out.deaths[1], Some((VTime(50), CrashKind::Crash)));
    }

    #[test]
    fn data_beats_deadline() {
        // The deadline only fires on a quiescent world; a completion
        // arriving first wins and the clock lands on the data time.
        let slot: PlMutex<Option<(VTime, u32)>> = PlMutex::new(None);
        let out = Engine::new(2).run(|h| {
            if h.rank() == 0 {
                h.advance(VDur(70));
                *slot.lock() = Some((h.now(), 42));
                h.notify_rank(1);
                0
            } else {
                let v = h
                    .block_on_deadline("value", VTime(10_000), || *slot.lock())
                    .expect("data arrives well before the lease expires");
                assert_eq!(h.now(), VTime(70));
                v
            }
        });
        assert_eq!(out.results, vec![0, 42]);
        // On this healthy run the timer never fired: end time is the
        // data time, not the deadline.
        assert_eq!(out.end_time, VTime(70));
    }

    #[test]
    fn liveness_oracle_is_sound() {
        let plan = CrashPlan::new().hang_at(2, VTime(300));
        let out = Engine::new(3)
            .crash_plan(plan)
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    // Before the death instant: everyone looks alive.
                    h.advance(VDur(100));
                    assert!(h.peer_dead(1).is_none());
                    assert!(h.peer_dead(2).is_none());
                    // Past it: the doomed rank is reported, live peers
                    // never are.
                    h.advance(VDur(400));
                    assert!(h.peer_dead(1).is_none());
                    assert_eq!(h.peer_dead(2), Some((VTime(300), CrashKind::Hang)));
                } else {
                    h.advance(VDur(500));
                }
            })
            .expect("run completes");
        assert_eq!(out.deaths[2], Some((VTime(300), CrashKind::Hang)));
    }

    #[test]
    fn rank_finishing_before_its_fate_survives() {
        // Scheduled to die at t=1000 but the closure returns at t=10:
        // the process exited cleanly first, so the oracle must never
        // report it dead.
        let plan = CrashPlan::new().crash_at(1, VTime(1000));
        let out = Engine::new(2)
            .crash_plan(plan)
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    h.advance(VDur(5000));
                    assert!(h.peer_dead(1).is_none(), "clean exit is not a death");
                } else {
                    h.advance(VDur(10));
                }
            })
            .expect("run completes");
        assert!(out.deaths[1].is_none());
        assert_eq!(out.results[1], Some(()));
    }

    #[test]
    fn run_panics_when_crash_plan_kills_a_rank() {
        let result = std::panic::catch_unwind(|| {
            Engine::new(2)
                .crash_plan(CrashPlan::new().crash_at(0, VTime(10)))
                .run(|h| h.advance(VDur(100)));
        });
        let err = result.unwrap_err();
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("try_run_ft"), "got: {msg}");
    }

    #[test]
    fn clean_run_identical_with_empty_crash_plan() {
        let baseline = Engine::new(4).run(|h| {
            for _ in 0..5 {
                h.advance(VDur(17));
            }
            h.now()
        });
        let with_plan = Engine::new(4).crash_plan(CrashPlan::new()).run(|h| {
            for _ in 0..5 {
                h.advance(VDur(17));
            }
            h.now()
        });
        assert_eq!(baseline.results, with_plan.results);
        assert_eq!(baseline.end_time, with_plan.end_time);
        assert_eq!(baseline.yields, with_plan.yields);
    }

    #[test]
    fn survivor_deadlock_still_reported_and_names_the_corpse() {
        // Rank 1 dies; rank 0 then blocks forever with no deadline
        // armed. That is still an application deadlock, and the report
        // must name the dead rank so the stuck wait is explicable.
        let err = Engine::new(2)
            .crash_plan(CrashPlan::new().crash_at(1, VTime(10)))
            .try_run_ft(|h| {
                if h.rank() == 0 {
                    h.block_on::<()>("recv-from-1", || None);
                } else {
                    h.block_on::<()>("never", || None);
                }
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { report, ranks } => {
                assert!(report.contains("Dead"), "got: {report}");
                assert!(report.contains("recv-from-1"), "got: {report}");
                assert_eq!(ranks.len(), 2, "corpse appears in diagnostics");
            }
            e => panic!("expected deadlock, got {e}"),
        }
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use std::sync::atomic::AtomicUsize;

    /// A mixed workload: staggered advances, ping/pong notifies, and
    /// overlapped charges. Returns (per-rank final clocks, event log,
    /// yields) so shard counts can be compared bit-for-bit.
    fn mixed_world(shards: usize, n: usize) -> (Vec<u64>, Vec<(u64, usize, u32)>, u64) {
        let log = PlMutex::new(Vec::new());
        let out = Engine::new(n).shards(shards).run(|h| {
            let r = h.rank();
            for step in 0..4u32 {
                let d = VDur::from_micros(((r * 7 + step as usize * 3) % 11 + 1) as u64);
                let x = h.charge_overlapped(d, || (r as u64 + 1) * (step as u64 + 1));
                assert_eq!(x, (r as u64 + 1) * (step as u64 + 1));
                log.lock().push((h.now().as_nanos(), r, step));
                // Ping the next rank so blocking paths get exercised.
                if step == 1 && r + 1 < h.n_ranks() {
                    h.notify_rank(r + 1);
                }
                h.advance(VDur::from_nanos((r as u64 * 13 + 5) % 17 + 1));
            }
            h.now().as_nanos()
        });
        let mut events = log.into_inner();
        events.sort_unstable();
        (out.results, events, out.yields)
    }

    #[test]
    fn shards_preserve_results_and_schedule() {
        let (c1, e1, y1) = mixed_world(1, 12);
        for s in [2, 4, 7] {
            let (cs, es, ys) = mixed_world(s, 12);
            assert_eq!(c1, cs, "clocks differ at shards={s}");
            assert_eq!(e1, es, "event log differs at shards={s}");
            assert_eq!(y1, ys, "yield count differs at shards={s}");
        }
    }

    #[test]
    fn shards_clamp_to_rank_count() {
        let out = Engine::new(2).shards(64).run(|h| {
            h.advance(VDur::from_micros(1));
            h.shards()
        });
        assert_eq!(out.results, vec![2, 2], "shards clamp to n_ranks");
    }

    #[test]
    fn charge_overlapped_is_bit_identical_across_shards() {
        let run = |s: usize| {
            Engine::new(6)
                .shards(s)
                .run(|h| {
                    let mut acc = 0u64;
                    for i in 0..8 {
                        acc = h.charge_overlapped(VDur::from_micros(i + 1), || {
                            acc.wrapping_mul(31).wrapping_add(h.rank() as u64 + i)
                        });
                    }
                    (h.now().as_nanos(), acc)
                })
                .results
        };
        let base = run(1);
        assert_eq!(base, run(2));
        assert_eq!(base, run(4));
    }

    #[test]
    fn charge_overlapped_overlaps_wall_clock() {
        // 8 ranks each burn ~30ms of real time inside a modeled charge.
        // Serial must pay ~240ms; 8 shards should overlap most of it.
        let wall = |s: usize| {
            let t0 = Instant::now();
            Engine::new(8).shards(s).run(|h| {
                h.charge_overlapped(VDur::from_micros(10), || {
                    std::thread::sleep(std::time::Duration::from_millis(30));
                });
                h.now()
            });
            t0.elapsed()
        };
        let serial = wall(1);
        let sharded = wall(8);
        assert!(
            sharded < serial / 2,
            "expected ≥2x overlap: serial={serial:?} sharded={sharded:?}"
        );
    }

    #[test]
    fn charge_measured_under_shards_moves_clock() {
        let out = Engine::new(4).shards(4).run(|h| {
            let v = h.charge_measured(|| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                h.rank() * 10
            });
            assert_eq!(v, h.rank() * 10);
            assert!(h.now().as_nanos() >= 1_000_000, "≥1ms charged");
            h.now()
        });
        assert!(out.end_time.as_nanos() >= 1_000_000);
    }

    #[test]
    fn computing_rank_gates_higher_keys() {
        // Rank 0 computes (measured) from t=0 with a floor at (0,0).
        // Rank 1 starts at t=1000 — a higher key — and must not run a
        // tenure until rank 0's computation rejoins.
        let done = AtomicBool::new(false);
        Engine::new(2).shards(2).run(|h| {
            if h.rank() == 0 {
                h.charge_measured(|| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    done.store(true, Ordering::SeqCst);
                });
            } else {
                h.advance_to(VTime(1_000));
                // This tenure's key (1000, 1) is above the floor (0, 0):
                // it can only have been granted after rank 0 rejoined.
                assert!(
                    done.load(Ordering::SeqCst),
                    "tenure above a computing floor ran before the floor lifted"
                );
            }
            h.now()
        });
    }

    #[test]
    fn lower_keys_run_while_higher_rank_computes() {
        // Rank 1 detaches at t=10000; rank 0's tenures at t<10000 are
        // below the floor and must proceed during the computation.
        let progressed = AtomicUsize::new(0);
        Engine::new(2).shards(2).run(|h| {
            if h.rank() == 1 {
                h.advance_to(VTime(10_000));
                h.charge_measured(|| {
                    let t0 = Instant::now();
                    while progressed.load(Ordering::SeqCst) < 5 {
                        if t0.elapsed() > std::time::Duration::from_secs(5) {
                            panic!("lower-key tenures starved under a computing floor");
                        }
                        std::thread::yield_now();
                    }
                });
            } else {
                for _ in 0..5 {
                    h.advance(VDur::from_nanos(100));
                    progressed.fetch_add(1, Ordering::SeqCst);
                }
            }
            h.now()
        });
    }

    #[test]
    fn watermarks_and_lbts_bound_future_interactions() {
        // 4 ranks, 2 shards. Each rank observes, during its own tenure,
        // that the LBTS never exceeds its own clock and that every
        // shard watermark is ≥ the LBTS.
        Engine::new(4).shards(2).run(|h| {
            for i in 0..5u64 {
                h.advance(VDur::from_micros(i * (h.rank() as u64 + 1) + 1));
                let lbts = h.lbts();
                assert!(lbts <= h.now(), "LBTS above the running rank's clock");
                for sh in 0..h.shards() {
                    if let Some(w) = h.shard_watermark(sh) {
                        assert!(w >= lbts, "shard {sh} watermark below LBTS");
                    }
                }
            }
            h.now()
        });
    }

    #[test]
    fn deadline_waits_for_computing_shards_before_firing() {
        // Rank 0 arms a deadline at t=1ms and parks. Rank 1 detaches a
        // measured computation that completes the handshake afterwards.
        // The deadline must NOT fire while rank 1's floor is live: the
        // notify beats the timer, exactly as in a serial run.
        let flag = PlMutex::new(None::<u64>);
        Engine::new(2).shards(2).run(|h| {
            if h.rank() == 0 {
                let got = h.block_on_deadline("lease", VTime(1_000_000), || {
                    flag.lock().map(|t| (VTime(t), t))
                });
                assert!(
                    got.is_some(),
                    "deadline fired even though a computing shard still had the data in flight"
                );
            } else {
                h.charge_measured(|| std::thread::sleep(std::time::Duration::from_millis(3)));
                *flag.lock() = Some(h.now().as_nanos());
                h.notify_rank(0);
                h.advance(VDur::from_nanos(1));
            }
            h.now()
        });
    }

    #[test]
    fn deadlock_report_capped_for_big_worlds() {
        let n = 24; // above REPORT_FULL_CAP
        let err = Engine::new(n)
            .shards(4)
            .try_run(|h| {
                h.advance(VDur::from_nanos(h.rank() as u64));
                h.block_on::<()>("stuck-forever", || None)
            })
            .unwrap_err();
        match err {
            SimError::Deadlock { report, ranks } => {
                assert!(
                    report.contains("report capped"),
                    "capped form expected:\n{report}"
                );
                assert!(
                    report.contains(&format!("{n} x Blocked (stuck-forever)")),
                    "histogram line missing:\n{report}"
                );
                assert!(
                    ranks.len() <= REPORT_OFFENDERS * 2,
                    "diag list not capped: {} entries",
                    ranks.len()
                );
                // Offenders are the earliest clocks: ranks 0..8.
                let mut ids: Vec<usize> = ranks.iter().map(|d| d.rank).collect();
                ids.sort_unstable();
                assert_eq!(ids, (0..REPORT_OFFENDERS).collect::<Vec<_>>());
            }
            e => panic!("expected deadlock, got {e}"),
        }
    }

    #[test]
    fn small_world_deadlock_report_keeps_full_form() {
        let err = Engine::new(3)
            .shards(2)
            .try_run(|h| h.block_on::<()>("waiting-on-nothing", || None))
            .unwrap_err();
        match err {
            SimError::Deadlock { report, ranks } => {
                assert!(!report.contains("report capped"));
                assert_eq!(ranks.len(), 3, "full per-rank diagnostics in small worlds");
            }
            e => panic!("expected deadlock, got {e}"),
        }
    }

    #[test]
    fn crash_plans_are_bit_identical_across_shards() {
        use crate::fault::CrashPlan;
        let run = |s: usize| {
            let plan = CrashPlan::new().crash_at(2, VTime(5_000));
            let out = Engine::new(6)
                .shards(s)
                .crash_plan(plan)
                .try_run_ft(|h| {
                    for _ in 0..6 {
                        h.charge_overlapped(VDur::from_micros(1), || ());
                    }
                    h.now().as_nanos()
                })
                .unwrap();
            (out.results, out.deaths, out.end_time, out.yields)
        };
        let (r1, d1, e1, y1) = run(1);
        for s in [2, 4] {
            let (rs, ds, es, ys) = run(s);
            assert_eq!(r1, rs, "results differ at shards={s}");
            assert_eq!(
                d1.iter().map(|d| d.map(|(t, _)| t)).collect::<Vec<_>>(),
                ds.iter().map(|d| d.map(|(t, _)| t)).collect::<Vec<_>>()
            );
            assert_eq!(e1, es);
            assert_eq!(y1, ys, "yield parity broken at shards={s}");
        }
    }

    #[test]
    fn panic_in_detached_closure_poisons_cleanly() {
        let err = Engine::new(4)
            .shards(2)
            .try_run(|h| {
                if h.rank() == 3 {
                    h.charge_overlapped(VDur::from_micros(1), || panic!("boom in detached compute"))
                } else {
                    for _ in 0..100 {
                        h.advance(VDur::from_nanos(10));
                    }
                }
            })
            .unwrap_err();
        match err {
            SimError::RankPanic { rank, message } => {
                assert_eq!(rank, 3);
                assert!(message.contains("boom in detached compute"));
            }
            e => panic!("expected rank panic, got {e}"),
        }
    }
}
