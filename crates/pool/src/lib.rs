//! Size-classed pool of reusable wire/frame buffers.
//!
//! The hot send/recv path allocates one buffer per message (or per
//! chunk) for the sealed wire image. `BufferPool` keeps those buffers
//! alive across messages in power-of-two size classes so steady-state
//! traffic recycles a small working set instead of hitting the heap
//! per message. `PooledBuf` is the RAII handle: deref to a `Vec<u8>`,
//! write the frame in place, then either let it drop (returns to the
//! pool) or `freeze()` it into a [`Bytes`] for the wire and later hand
//! that back via [`BufferPool::reclaim`].
//!
//! The pool is deliberately dependency-free and does no tracing of its
//! own; callers observe `take`/`reclaim` outcomes (`PooledBuf::fresh`,
//! the `reclaim` return value) and feed the alloc counters themselves.
//!
//! Thread safety: classes are `Mutex`-guarded. Under the conservative
//! virtual-time engine exactly one rank executes at a time, so the
//! locks are effectively uncontended; they exist so one engine-wide
//! pool can be shared across rank threads (the receiver reclaims into
//! the same pool the sender drew from, closing the recycle loop).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bytes::Bytes;

/// Smallest size class (bytes). Requests below this are rounded up.
const MIN_CLASS: usize = 1 << 6; // 64 B
/// Largest pooled size class. Larger requests get exact fresh
/// allocations that are not retained on drop.
const MAX_CLASS: usize = 1 << 22; // 4 MiB
/// Retained buffers per size class; beyond this, dropped buffers are
/// simply freed.
const PER_CLASS_CAP: usize = 64;

fn class_index(len: usize) -> Option<usize> {
    let sz = len.max(MIN_CLASS).next_power_of_two();
    if sz > MAX_CLASS {
        return None;
    }
    Some(sz.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize)
}

fn class_size(idx: usize) -> usize {
    MIN_CLASS << idx
}

const N_CLASSES: usize =
    (MAX_CLASS.trailing_zeros() - MIN_CLASS.trailing_zeros()) as usize + 1;

#[derive(Default)]
struct Inner {
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
    fresh: AtomicU64,
    hits: AtomicU64,
    reclaims: AtomicU64,
    reclaim_misses: AtomicU64,
}

/// Cumulative pool activity, for tests and diagnostics. The tracer's
/// `alloc/*` counters are fed by callers, not from here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `take` calls served by a heap allocation.
    pub fresh: u64,
    /// `take` calls served from a recycled buffer.
    pub hits: u64,
    /// `reclaim` calls that recovered the backing buffer.
    pub reclaims: u64,
    /// `reclaim` calls where the buffer was still shared (e.g. ARQ
    /// retention) or oversize, so nothing was recycled.
    pub reclaim_misses: u64,
}

/// Cheaply cloneable handle to a shared buffer pool.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Inner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                classes: (0..N_CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
                ..Inner::default()
            }),
        }
    }

    /// Hand out an empty buffer with capacity for at least `len`
    /// bytes. Recycles a pooled buffer of the matching size class when
    /// one is available, otherwise allocates fresh.
    pub fn take(&self, len: usize) -> PooledBuf {
        if let Some(idx) = class_index(len) {
            if let Some(mut v) = self.inner.classes[idx].lock().unwrap().pop() {
                v.clear();
                self.inner.hits.fetch_add(1, Ordering::Relaxed);
                return PooledBuf {
                    vec: v,
                    pool: Some(self.clone()),
                    fresh: false,
                };
            }
            self.inner.fresh.fetch_add(1, Ordering::Relaxed);
            return PooledBuf {
                vec: Vec::with_capacity(class_size(idx)),
                pool: Some(self.clone()),
                fresh: true,
            };
        }
        // Oversize: exact allocation, never retained.
        self.inner.fresh.fetch_add(1, Ordering::Relaxed);
        PooledBuf {
            vec: Vec::with_capacity(len),
            pool: None,
            fresh: true,
        }
    }

    /// Try to recycle the allocation behind a wire buffer. Succeeds
    /// only when `b` is the unique, full-range owner (see
    /// [`Bytes::try_into_vec`]); returns whether a buffer was
    /// recovered so the caller can count the outcome.
    pub fn reclaim(&self, b: Bytes) -> bool {
        match b.try_into_vec() {
            Ok(v) if class_index(v.capacity()).is_some() && v.capacity() >= MIN_CLASS => {
                self.put_back(v);
                self.inner.reclaims.fetch_add(1, Ordering::Relaxed);
                true
            }
            _ => {
                self.inner.reclaim_misses.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    fn put_back(&self, mut v: Vec<u8>) {
        // File under the largest class the capacity fully covers, so a
        // future `take` of that class size cannot under-provision.
        let cap = v.capacity();
        if cap < MIN_CLASS || cap.next_power_of_two() > MAX_CLASS {
            return;
        }
        let sz = if cap.is_power_of_two() { cap } else { cap.next_power_of_two() / 2 };
        let Some(idx) = class_index(sz) else { return };
        let shelf = &mut *self.inner.classes[idx].lock().unwrap();
        if shelf.len() < PER_CLASS_CAP {
            v.clear();
            shelf.push(v);
        }
    }

    pub fn stats(&self) -> PoolStats {
        PoolStats {
            fresh: self.inner.fresh.load(Ordering::Relaxed),
            hits: self.inner.hits.load(Ordering::Relaxed),
            reclaims: self.inner.reclaims.load(Ordering::Relaxed),
            reclaim_misses: self.inner.reclaim_misses.load(Ordering::Relaxed),
        }
    }
}

/// RAII handle to a pooled buffer. Deref/DerefMut as `Vec<u8>`; on
/// drop the buffer returns to its pool (if it came from one).
pub struct PooledBuf {
    vec: Vec<u8>,
    pool: Option<BufferPool>,
    fresh: bool,
}

impl PooledBuf {
    /// Whether this take was served by a heap allocation (true) or a
    /// recycled pool buffer (false).
    pub fn fresh(&self) -> bool {
        self.fresh
    }

    /// Detach the buffer from the pool without copying. The `Vec` will
    /// not return to the pool unless later reclaimed as `Bytes`.
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.vec)
    }

    /// Convert to an immutable wire buffer without copying. Reclaim it
    /// into the pool afterwards via [`BufferPool::reclaim`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.into_vec())
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.vec
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put_back(std::mem::take(&mut self.vec));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_recycles_and_take_hits() {
        let p = BufferPool::new();
        let mut b = p.take(1000);
        assert!(b.fresh());
        b.extend_from_slice(&[7u8; 1000]);
        drop(b);
        let b2 = p.take(900); // same 1 KiB class
        assert!(!b2.fresh());
        assert!(b2.is_empty());
        assert!(b2.capacity() >= 900);
        let s = p.stats();
        assert_eq!((s.fresh, s.hits), (1, 1));
    }

    #[test]
    fn freeze_then_reclaim_closes_the_loop() {
        let p = BufferPool::new();
        let mut b = p.take(64 << 10);
        b.extend_from_slice(&[1u8; 64 << 10]);
        let wire = b.freeze();
        assert!(p.reclaim(wire));
        assert!(!p.take(64 << 10).fresh());
    }

    #[test]
    fn reclaim_of_shared_bytes_is_a_miss() {
        let p = BufferPool::new();
        let wire = p.take(256).freeze();
        let retained = wire.clone(); // e.g. ARQ retransmit retention
        assert!(!p.reclaim(wire));
        drop(retained);
        assert_eq!(p.stats().reclaim_misses, 1);
    }

    #[test]
    fn oversize_requests_are_exact_and_unpooled() {
        let p = BufferPool::new();
        let b = p.take(MAX_CLASS + 1);
        assert!(b.fresh());
        drop(b);
        assert!(p.take(MAX_CLASS + 1).fresh());
    }

    #[test]
    fn class_rounding_never_under_provisions() {
        let p = BufferPool::new();
        drop(p.take(1 << 12)); // 4 KiB class
        let b = p.take(1 << 12);
        assert!(!b.fresh());
        assert!(b.capacity() >= 1 << 12);
    }
}
