//! Counter mode — privacy-only stream encryption (NIST SP 800-38A).
//!
//! CTR underlies GCM's confidentiality; exposed separately so the tests
//! and the legacy demos can show that privacy without integrity is not
//! enough (a CTR ciphertext is trivially malleable).

use crate::aes::{BlockEncrypt, SoftAes};
use crate::error::Result;

#[cfg(target_arch = "x86_64")]
use crate::aes::AesNiPipelined;

/// CTR-mode cipher (picks AES-NI when available).
pub struct CtrCipher {
    aes: Box<dyn BlockEncrypt>,
}

impl CtrCipher {
    /// Build from a 16- or 32-byte key.
    pub fn new(key: &[u8]) -> Result<Self> {
        #[cfg(target_arch = "x86_64")]
        {
            if crate::aes::hardware_acceleration_available() {
                return Ok(CtrCipher {
                    aes: Box::new(AesNiPipelined::new(key)?),
                });
            }
        }
        Ok(CtrCipher {
            aes: Box::new(SoftAes::new(key)?),
        })
    }

    /// Encrypt or decrypt (CTR is an involution) in place, with the
    /// keystream starting at `nonce ‖ 1` exactly like GCM's payload
    /// counter.
    pub fn apply(&self, nonce: &[u8; 12], buf: &mut [u8]) {
        let mut ctr = [0u8; 16];
        ctr[..12].copy_from_slice(nonce);
        ctr[15] = 2; // GCM payload counter starts at 2 (1 is the tag mask)
        self.aes.ctr_apply(&ctr, buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let ctr = CtrCipher::new(&[5u8; 32]).unwrap();
        let nonce = [1u8; 12];
        let orig: Vec<u8> = (0..100).collect();
        let mut buf = orig.clone();
        ctr.apply(&nonce, &mut buf);
        assert_ne!(buf, orig);
        ctr.apply(&nonce, &mut buf);
        assert_eq!(buf, orig);
    }

    #[test]
    fn matches_gcm_confidentiality() {
        // GCM's ciphertext body equals CTR with the same key/nonce —
        // the modes share the keystream by construction.
        let key = [0xCDu8; 16];
        let nonce = [7u8; 12];
        let gcm = crate::gcm::AesGcm::new(&key).unwrap();
        let ctr = CtrCipher::new(&key).unwrap();
        let pt = b"forty-two bytes of very important data!!!";
        let sealed = gcm.seal(&nonce, b"", pt);
        let mut buf = pt.to_vec();
        ctr.apply(&nonce, &mut buf);
        assert_eq!(&sealed[..pt.len()], &buf[..]);
    }

    #[test]
    fn malleable_without_integrity() {
        // Flipping ciphertext bit i flips plaintext bit i undetected —
        // why the paper insists on GCM rather than CTR.
        let ctr = CtrCipher::new(&[5u8; 16]).unwrap();
        let nonce = [3u8; 12];
        let mut buf = b"pay Bob $100".to_vec();
        ctr.apply(&nonce, &mut buf);
        // Attacker flips '1' (0x31) to '9' (0x39) at position 9.
        buf[9] ^= 0x31 ^ 0x39;
        ctr.apply(&nonce, &mut buf);
        assert_eq!(&buf, b"pay Bob $900");
    }
}
