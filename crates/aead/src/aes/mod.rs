//! AES-128 / AES-256 block cipher engines.
//!
//! Three engines are provided:
//!
//! * [`SoftAes`] — portable T-table implementation (4 KiB encryption
//!   tables generated at compile time). This models the software fallback
//!   path of CryptoPP in the paper's "gcc 4.8.5" build.
//! * [`AesNi`] — hardware AES-NI, one block at a time (Libsodium-style).
//! * [`AesNiPipelined`] — hardware AES-NI with eight independent blocks
//!   in flight per loop iteration, hiding the `aesenc` latency
//!   (OpenSSL/BoringSSL-style bulk CTR).
//!
//! All engines implement [`BlockEncrypt`]; the software engine also
//! implements [`BlockDecrypt`] (needed only by the legacy ECB/CBC modes).

mod schedule;
mod soft;
#[cfg(target_arch = "x86_64")]
mod aesni;

pub use schedule::{KeySchedule, Rounds};
pub use soft::SoftAes;
#[cfg(target_arch = "x86_64")]
pub use aesni::{AesNi, AesNiPipelined};

use crate::error::{Error, Result};

/// Forward (encryption) direction of a 128-bit block cipher.
///
/// `ctr_apply` is the bulk entry point used by CTR mode and GCM; engines
/// override it to pipeline several blocks.
pub trait BlockEncrypt: Send + Sync {
    /// Encrypt one 16-byte block in place.
    fn encrypt_block(&self, block: &mut [u8; 16]);

    /// XOR `buf` with the CTR keystream starting at `counter_block`.
    ///
    /// The counter is the last 32 bits of the block, big-endian,
    /// incremented per block with wraparound (NIST SP 800-38D `inc32`).
    fn ctr_apply(&self, counter_block: &[u8; 16], buf: &mut [u8]) {
        let mut ctr = *counter_block;
        let mut chunks = buf.chunks_exact_mut(16);
        for chunk in &mut chunks {
            let mut ks = ctr;
            self.encrypt_block(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
            inc32(&mut ctr);
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let mut ks = ctr;
            self.encrypt_block(&mut ks);
            for (b, k) in rem.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
    }
}

/// Inverse (decryption) direction; only the legacy ECB/CBC demos need it.
pub trait BlockDecrypt: Send + Sync {
    /// Decrypt one 16-byte block in place.
    fn decrypt_block(&self, block: &mut [u8; 16]);
}

/// Increment the last 32 bits of a block, big-endian, with wraparound.
#[inline]
pub fn inc32(block: &mut [u8; 16]) {
    let mut ctr = u32::from_be_bytes([block[12], block[13], block[14], block[15]]);
    ctr = ctr.wrapping_add(1);
    block[12..16].copy_from_slice(&ctr.to_be_bytes());
}

/// Returns `true` if the CPU supports the AES-NI + PCLMULQDQ fast paths.
pub fn hardware_acceleration_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("aes")
            && std::arch::is_x86_feature_detected!("pclmulqdq")
            && std::arch::is_x86_feature_detected!("ssse3")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Validate an AES key length (16 or 32 bytes; AES-192 is not used by the
/// paper and is intentionally unsupported).
pub fn check_key_len(key: &[u8]) -> Result<()> {
    match key.len() {
        16 | 32 => Ok(()),
        n => Err(Error::InvalidKeyLength { got: n }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix C.1: AES-128 known-answer test.
    pub const FIPS197_KEY128: [u8; 16] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
        0x0e, 0x0f,
    ];
    /// FIPS-197 Appendix C.3: AES-256 key.
    pub const FIPS197_KEY256: [u8; 32] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
        0x0e, 0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b,
        0x1c, 0x1d, 0x1e, 0x1f,
    ];
    pub const FIPS197_PT: [u8; 16] = [
        0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
        0xee, 0xff,
    ];
    pub const FIPS197_CT128: [u8; 16] = [
        0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
        0xc5, 0x5a,
    ];
    pub const FIPS197_CT256: [u8; 16] = [
        0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
        0x60, 0x89,
    ];

    #[test]
    fn soft_aes128_fips197() {
        let aes = SoftAes::new(&FIPS197_KEY128).unwrap();
        let mut block = FIPS197_PT;
        aes.encrypt_block(&mut block);
        assert_eq!(block, FIPS197_CT128);
        aes.decrypt_block(&mut block);
        assert_eq!(block, FIPS197_PT);
    }

    #[test]
    fn soft_aes256_fips197() {
        let aes = SoftAes::new(&FIPS197_KEY256).unwrap();
        let mut block = FIPS197_PT;
        aes.encrypt_block(&mut block);
        assert_eq!(block, FIPS197_CT256);
        aes.decrypt_block(&mut block);
        assert_eq!(block, FIPS197_PT);
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn aesni_matches_fips197() {
        if !hardware_acceleration_available() {
            return;
        }
        for (key, expect) in [
            (&FIPS197_KEY128[..], FIPS197_CT128),
            (&FIPS197_KEY256[..], FIPS197_CT256),
        ] {
            let aes = AesNi::new(key).unwrap();
            let mut block = FIPS197_PT;
            aes.encrypt_block(&mut block);
            assert_eq!(block, expect);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn pipelined_ctr_matches_soft_ctr() {
        if !hardware_acceleration_available() {
            return;
        }
        let key = FIPS197_KEY256;
        let soft = SoftAes::new(&key).unwrap();
        let fast = AesNiPipelined::new(&key).unwrap();
        for len in [0usize, 1, 15, 16, 17, 127, 128, 129, 1000, 4096] {
            let mut a: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let mut b = a.clone();
            let ctr = [0xa5u8; 16];
            soft.ctr_apply(&ctr, &mut a);
            fast.ctr_apply(&ctr, &mut b);
            assert_eq!(a, b, "len={len}");
        }
    }

    #[test]
    fn inc32_wraps() {
        let mut b = [0u8; 16];
        b[12..16].copy_from_slice(&u32::MAX.to_be_bytes());
        b[0] = 0x77;
        inc32(&mut b);
        assert_eq!(&b[12..16], &[0, 0, 0, 0]);
        assert_eq!(b[0], 0x77, "inc32 must not touch the nonce part");
    }

    #[test]
    fn rejects_bad_key_lengths() {
        for n in [0usize, 1, 15, 17, 24, 31, 33] {
            assert!(SoftAes::new(&vec![0u8; n]).is_err(), "len {n} accepted");
        }
    }

    #[test]
    fn default_ctr_apply_partial_tail() {
        // The tail (< 16 bytes) must use the keystream block *after* the
        // full blocks, not reuse an earlier one.
        let aes = SoftAes::new(&FIPS197_KEY128).unwrap();
        let ctr = [3u8; 16];
        let mut long = [0u8; 40];
        aes.ctr_apply(&ctr, &mut long);
        let mut head = [0u8; 32];
        aes.ctr_apply(&ctr, &mut head);
        assert_eq!(&long[..32], &head[..]);
        // Tail equals keystream of block index 2.
        let mut blk = ctr;
        inc32(&mut blk);
        inc32(&mut blk);
        aes.encrypt_block(&mut blk);
        assert_eq!(&long[32..40], &blk[..8]);
    }
}
