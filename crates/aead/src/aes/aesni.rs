//! Hardware AES engines built on the x86-64 AES-NI instruction set.
//!
//! [`AesNi`] encrypts one block at a time — the shape of Libsodium's
//! `aes256gcm` implementation. [`AesNiPipelined`] keeps eight independent
//! counter blocks in flight per loop iteration so consecutive `aesenc`
//! instructions never wait on each other — the shape of OpenSSL's and
//! BoringSSL's bulk CTR path, and the entire reason those libraries lead
//! Fig. 2 of the paper.
//!
//! Round keys come from the portable [`KeySchedule`]; both engines are
//! verified against the FIPS-197 vectors and against [`super::SoftAes`].

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

use super::schedule::KeySchedule;
use super::{inc32, BlockEncrypt};
use crate::error::{Error, Result};

/// Maximum round keys (AES-256: 15).
const MAX_RK: usize = 15;

#[derive(Clone)]
struct RoundKeys {
    rk: [__m128i; MAX_RK],
    nr: usize,
}

// SAFETY: __m128i is plain data.
unsafe impl Send for RoundKeys {}
unsafe impl Sync for RoundKeys {}

fn load_round_keys(key: &[u8]) -> Result<RoundKeys> {
    if !std::arch::is_x86_feature_detected!("aes")
        || !std::arch::is_x86_feature_detected!("ssse3")
    {
        return Err(Error::HardwareUnavailable);
    }
    let ks = KeySchedule::new(key)?;
    let nr = ks.rounds().count();
    // SAFETY: loading from a properly sized byte array.
    unsafe {
        let mut rk = [_mm_setzero_si128(); MAX_RK];
        for (r, slot) in rk.iter_mut().enumerate().take(nr + 1) {
            let bytes = ks.round_bytes(r);
            *slot = _mm_loadu_si128(bytes.as_ptr() as *const __m128i);
        }
        Ok(RoundKeys { rk, nr })
    }
}

#[inline]
#[target_feature(enable = "aes")]
unsafe fn encrypt1(rk: &RoundKeys, mut b: __m128i) -> __m128i {
    b = _mm_xor_si128(b, rk.rk[0]);
    for r in 1..rk.nr {
        b = _mm_aesenc_si128(b, rk.rk[r]);
    }
    _mm_aesenclast_si128(b, rk.rk[rk.nr])
}

/// Single-block AES-NI engine (Libsodium-style).
pub struct AesNi {
    keys: RoundKeys,
}

impl AesNi {
    /// Build from a 16- or 32-byte key; fails with
    /// [`Error::HardwareUnavailable`] if the CPU lacks AES-NI.
    pub fn new(key: &[u8]) -> Result<Self> {
        Ok(AesNi {
            keys: load_round_keys(key)?,
        })
    }
}

impl BlockEncrypt for AesNi {
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        // SAFETY: constructor verified the `aes` feature.
        unsafe {
            let b = _mm_loadu_si128(block.as_ptr() as *const __m128i);
            let c = encrypt1(&self.keys, b);
            _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, c);
        }
    }
}

/// Eight-block interleaved AES-NI CTR engine (OpenSSL/BoringSSL-style).
pub struct AesNiPipelined {
    keys: RoundKeys,
}

impl AesNiPipelined {
    /// Build from a 16- or 32-byte key; fails with
    /// [`Error::HardwareUnavailable`] if the CPU lacks AES-NI.
    pub fn new(key: &[u8]) -> Result<Self> {
        Ok(AesNiPipelined {
            keys: load_round_keys(key)?,
        })
    }

    #[target_feature(enable = "aes", enable = "ssse3")]
    unsafe fn ctr_apply_inner(&self, counter_block: &[u8; 16], buf: &mut [u8]) {
        let rk = &self.keys;
        // Big-endian 32-bit counter increment done in-register: byte-swap
        // the low dword lane via shuffle, add, swap back. Simpler and fast
        // enough: keep the counter in scalar form and rebuild the vector.
        let mut ctr = *counter_block;
        let mut offset = 0usize;
        let total = buf.len();

        // 8-block main loop.
        while total - offset >= 128 {
            let mut blocks = [_mm_setzero_si128(); 8];
            for item in blocks.iter_mut() {
                *item = _mm_loadu_si128(ctr.as_ptr() as *const __m128i);
                inc32(&mut ctr);
            }
            for b in blocks.iter_mut() {
                *b = _mm_xor_si128(*b, rk.rk[0]);
            }
            for r in 1..rk.nr {
                let k = rk.rk[r];
                for b in blocks.iter_mut() {
                    *b = _mm_aesenc_si128(*b, k);
                }
            }
            let klast = rk.rk[rk.nr];
            for (i, b) in blocks.iter_mut().enumerate() {
                let ks = _mm_aesenclast_si128(*b, klast);
                let p = buf.as_ptr().add(offset + 16 * i) as *const __m128i;
                let d = _mm_xor_si128(ks, _mm_loadu_si128(p));
                _mm_storeu_si128(buf.as_mut_ptr().add(offset + 16 * i) as *mut __m128i, d);
            }
            offset += 128;
        }

        // Whole-block tail.
        while total - offset >= 16 {
            let b = _mm_loadu_si128(ctr.as_ptr() as *const __m128i);
            inc32(&mut ctr);
            let ks = encrypt1(rk, b);
            let p = buf.as_ptr().add(offset) as *const __m128i;
            let d = _mm_xor_si128(ks, _mm_loadu_si128(p));
            _mm_storeu_si128(buf.as_mut_ptr().add(offset) as *mut __m128i, d);
            offset += 16;
        }

        // Partial tail.
        if offset < total {
            let b = _mm_loadu_si128(ctr.as_ptr() as *const __m128i);
            let ks = encrypt1(rk, b);
            let mut ksb = [0u8; 16];
            _mm_storeu_si128(ksb.as_mut_ptr() as *mut __m128i, ks);
            for (dst, k) in buf[offset..].iter_mut().zip(ksb.iter()) {
                *dst ^= k;
            }
        }
    }
}

impl BlockEncrypt for AesNiPipelined {
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        // SAFETY: constructor verified the `aes` feature.
        unsafe {
            let b = _mm_loadu_si128(block.as_ptr() as *const __m128i);
            let c = encrypt1(&self.keys, b);
            _mm_storeu_si128(block.as_mut_ptr() as *mut __m128i, c);
        }
    }

    fn ctr_apply(&self, counter_block: &[u8; 16], buf: &mut [u8]) {
        // SAFETY: constructor verified the `aes` and `ssse3` features.
        unsafe { self.ctr_apply_inner(counter_block, buf) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::SoftAes;

    fn hw() -> bool {
        super::super::hardware_acceleration_available()
    }

    #[test]
    fn single_block_matches_soft() {
        if !hw() {
            return;
        }
        for key_len in [16usize, 32] {
            let key: Vec<u8> = (0..key_len as u8).map(|i| i.wrapping_mul(31)).collect();
            let soft = SoftAes::new(&key).unwrap();
            let ni = AesNi::new(&key).unwrap();
            for seed in 0u8..16 {
                let mut a = [seed; 16];
                let mut b = a;
                soft.encrypt_block(&mut a);
                ni.encrypt_block(&mut b);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn ctr_counter_wrap_in_pipeline() {
        if !hw() {
            return;
        }
        let key = [9u8; 16];
        let soft = SoftAes::new(&key).unwrap();
        let fast = AesNiPipelined::new(&key).unwrap();
        // Start 3 blocks before the 32-bit wrap so the 8-block loop
        // crosses it.
        let mut ctr = [0u8; 16];
        ctr[12..16].copy_from_slice(&(u32::MAX - 2).to_be_bytes());
        let mut a = vec![0xEEu8; 300];
        let mut b = a.clone();
        soft.ctr_apply(&ctr, &mut a);
        fast.ctr_apply(&ctr, &mut b);
        assert_eq!(a, b);
    }
}
