//! Portable software AES using 4 KiB of compile-time-generated T-tables
//! for encryption and a straightforward scalar inverse cipher for
//! decryption (only the legacy ECB/CBC demos decrypt with this engine).
//!
//! This is deliberately a table-driven implementation: it models the kind
//! of software AES the paper's slowest library (CryptoPP under the
//! "gcc 4.8.5" build) falls back to, with the same cache-sensitivity.

use super::schedule::{INV_SBOX, KeySchedule, SBOX};
use super::{BlockDecrypt, BlockEncrypt};
use crate::error::Result;

const fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 == 1 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// T0[x] = (2·S[x], S[x], S[x], 3·S[x]) as a big-endian u32; the other
/// three tables are byte rotations of this one.
const T0: [u32; 256] = {
    let mut t = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let s = SBOX[i];
        t[i] = u32::from_be_bytes([xtime(s), s, s, gmul(s, 3)]);
        i += 1;
    }
    t
};

/// Software AES engine (T-table encrypt, scalar decrypt).
pub struct SoftAes {
    ks: KeySchedule,
}

impl SoftAes {
    /// Build from a 16- or 32-byte key.
    pub fn new(key: &[u8]) -> Result<Self> {
        Ok(SoftAes {
            ks: KeySchedule::new(key)?,
        })
    }

    #[inline]
    fn load(block: &[u8; 16], rk: [u32; 4]) -> [u32; 4] {
        let mut w = [0u32; 4];
        for (j, item) in w.iter_mut().enumerate() {
            *item = u32::from_be_bytes([
                block[4 * j],
                block[4 * j + 1],
                block[4 * j + 2],
                block[4 * j + 3],
            ]) ^ rk[j];
        }
        w
    }

    #[inline]
    fn round(w: [u32; 4], rk: [u32; 4]) -> [u32; 4] {
        let mut out = [0u32; 4];
        for j in 0..4 {
            let a = (w[j] >> 24) as usize;
            let b = ((w[(j + 1) & 3] >> 16) & 0xff) as usize;
            let c = ((w[(j + 2) & 3] >> 8) & 0xff) as usize;
            let d = (w[(j + 3) & 3] & 0xff) as usize;
            out[j] = T0[a]
                ^ T0[b].rotate_right(8)
                ^ T0[c].rotate_right(16)
                ^ T0[d].rotate_right(24)
                ^ rk[j];
        }
        out
    }

    #[inline]
    fn final_round(w: [u32; 4], rk: [u32; 4]) -> [u32; 4] {
        let mut out = [0u32; 4];
        for j in 0..4 {
            let a = SBOX[(w[j] >> 24) as usize] as u32;
            let b = SBOX[((w[(j + 1) & 3] >> 16) & 0xff) as usize] as u32;
            let c = SBOX[((w[(j + 2) & 3] >> 8) & 0xff) as usize] as u32;
            let d = SBOX[(w[(j + 3) & 3] & 0xff) as usize] as u32;
            out[j] = (a << 24 | b << 16 | c << 8 | d) ^ rk[j];
        }
        out
    }
}

impl BlockEncrypt for SoftAes {
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.ks.rounds().count();
        let mut w = Self::load(block, self.ks.round_words(0));
        for r in 1..nr {
            w = Self::round(w, self.ks.round_words(r));
        }
        w = Self::final_round(w, self.ks.round_words(nr));
        for (j, word) in w.iter().enumerate() {
            block[4 * j..4 * j + 4].copy_from_slice(&word.to_be_bytes());
        }
    }
}

impl BlockDecrypt for SoftAes {
    fn decrypt_block(&self, block: &mut [u8; 16]) {
        let nr = self.ks.rounds().count();
        let mut state = *block;
        xor_rk(&mut state, self.ks.round_bytes(nr));
        for r in (1..nr).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            xor_rk(&mut state, self.ks.round_bytes(r));
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        xor_rk(&mut state, self.ks.round_bytes(0));
        *block = state;
    }
}

#[inline]
fn xor_rk(state: &mut [u8; 16], rk: [u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = INV_SBOX[*b as usize];
    }
}

/// State layout: byte `4*col + row`; InvShiftRows rotates row `r` right by `r`.
#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for row in 1..4 {
        for col in 0..4 {
            state[4 * ((col + row) & 3) + row] = s[4 * col + row];
        }
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let c = &mut state[4 * col..4 * col + 4];
        let (a0, a1, a2, a3) = (c[0], c[1], c[2], c[3]);
        c[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
        c[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
        c[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
        c[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encrypt_decrypt_roundtrip_many() {
        let aes = SoftAes::new(&[0x42u8; 32]).unwrap();
        for seed in 0u8..32 {
            let mut block = [seed; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = b.wrapping_add(i as u8 * 17);
            }
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig);
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn gmul_agrees_with_xtime() {
        for x in 0..=255u8 {
            assert_eq!(gmul(x, 2), xtime(x));
            assert_eq!(gmul(x, 1), x);
            assert_eq!(gmul(x, 3), xtime(x) ^ x);
        }
    }
}
