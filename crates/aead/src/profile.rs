//! The paper's four cryptographic libraries as selectable backends.
//!
//! Each [`CryptoLibrary`] maps to a concrete (AES engine × GHASH engine)
//! combination whose *algorithmic* character matches the real library —
//! see DESIGN.md §2 for the substitution argument — plus a calibrated
//! throughput anchor curve digitized from Figs. 2 and 9 of the paper.
//! The curves drive the simulator's `Calibrated` timing mode so that the
//! crypto-to-network speed ratio on any host matches the paper's
//! Xeon E5-2620 v4 testbed.
//!
//! All four backends compute byte-identical AES-GCM; a message sealed by
//! one opens under any other (covered by tests).

use crate::aes::hardware_acceleration_available;
use crate::error::{Error, Result};
use crate::gcm::{AesEngineKind, AesGcm, GhashEngineKind};

/// AES key size. The paper benchmarks both and reports 256-bit results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key (10 rounds) — the fastest standard option.
    Aes128,
    /// 256-bit key (14 rounds) — the most secure option; what the paper
    /// reports.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    pub fn bytes(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes256 => 32,
        }
    }

    /// Key length in bits.
    pub fn bits(self) -> usize {
        self.bytes() * 8
    }
}

/// Which compiler toolchain built the crypto library — the paper found
/// this matters enormously for CryptoPP (Fig. 2 vs Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompilerBuild {
    /// `gcc 4.8.5 -O2` — the Ethernet/MPICH build (Fig. 2).
    Gcc485,
    /// The MVAPICH2-2.3 toolchain — more aggressive optimization,
    /// dramatically improving CryptoPP above 64 KB (Fig. 9).
    Mvapich23,
}

/// The four cryptographic libraries studied by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CryptoLibrary {
    /// OpenSSL 1.1.1 — AES-NI with deep pipelining; the commodity choice.
    OpenSsl,
    /// BoringSSL — Google's OpenSSL fork; performance twin of OpenSSL.
    BoringSsl,
    /// Libsodium 1.0.16 — AES-NI without multi-block scheduling;
    /// AES-256-GCM **only**.
    Libsodium,
    /// CryptoPP 7.0 — table-driven software AES in the gcc build.
    CryptoPp,
}

/// All four libraries, in the order the paper lists them.
pub const ALL_LIBRARIES: [CryptoLibrary; 4] = [
    CryptoLibrary::OpenSsl,
    CryptoLibrary::BoringSsl,
    CryptoLibrary::Libsodium,
    CryptoLibrary::CryptoPp,
];

/// The three libraries the paper reports (OpenSSL ≈ BoringSSL, so only
/// BoringSSL is shown).
pub const REPORTED_LIBRARIES: [CryptoLibrary; 3] = [
    CryptoLibrary::BoringSsl,
    CryptoLibrary::Libsodium,
    CryptoLibrary::CryptoPp,
];

impl CryptoLibrary {
    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            CryptoLibrary::OpenSsl => "OpenSSL",
            CryptoLibrary::BoringSsl => "BoringSSL",
            CryptoLibrary::Libsodium => "Libsodium",
            CryptoLibrary::CryptoPp => "CryptoPP",
        }
    }

    /// Whether this backend supports the key size (Libsodium's
    /// `crypto_aead_aes256gcm` API is 256-bit only).
    pub fn supports(self, key_size: KeySize) -> bool {
        !matches!((self, key_size), (CryptoLibrary::Libsodium, KeySize::Aes128))
    }

    /// The engine combination modelling this library.
    pub fn engines(self) -> (AesEngineKind, GhashEngineKind) {
        match self {
            CryptoLibrary::OpenSsl | CryptoLibrary::BoringSsl => {
                (AesEngineKind::NiPipelined, GhashEngineKind::Clmul)
            }
            CryptoLibrary::Libsodium => (AesEngineKind::Ni, GhashEngineKind::Clmul),
            CryptoLibrary::CryptoPp => (AesEngineKind::Soft, GhashEngineKind::Soft),
        }
    }

    /// Instantiate an [`AesGcm`] cipher for this library profile.
    ///
    /// Falls back to the software engines when the CPU lacks AES-NI, so
    /// the ciphertexts stay identical everywhere.
    pub fn instantiate(self, key_size: KeySize, key: &[u8]) -> Result<AesGcm> {
        self.instantiate_for_build(CompilerBuild::Gcc485, key_size, key)
    }

    /// Instantiate for a specific compiler build. The only difference:
    /// the MVAPICH toolchain vectorizes CryptoPP's bulk path (the whole
    /// point of Fig. 9), so that profile runs on the hardware engines;
    /// all engines compute byte-identical AES-GCM either way.
    pub fn instantiate_for_build(
        self,
        build: CompilerBuild,
        key_size: KeySize,
        key: &[u8],
    ) -> Result<AesGcm> {
        if !self.supports(key_size) {
            return Err(Error::UnsupportedKeySize {
                backend: self.name(),
                bits: key_size.bits(),
            });
        }
        if key.len() != key_size.bytes() {
            return Err(Error::InvalidKeyLength { got: key.len() });
        }
        let (mut aes, mut ghash) = self.engines();
        if self == CryptoLibrary::CryptoPp && build == CompilerBuild::Mvapich23 {
            (aes, ghash) = (AesEngineKind::Ni, GhashEngineKind::Clmul);
        }
        if !hardware_acceleration_available() {
            if aes != AesEngineKind::Soft || ghash != GhashEngineKind::Soft {
                empi_trace::engine_counters::add_hw_fallback(1);
            }
            aes = AesEngineKind::Soft;
            ghash = GhashEngineKind::Soft;
        }
        AesGcm::with_engines(aes, ghash, key)
    }

    /// Enc-dec throughput anchors `(message bytes, MB/s)` digitized from
    /// Fig. 2 / Fig. 9 and the figures quoted in the paper's text.
    ///
    /// "Enc-dec throughput" is the paper's metric: bytes divided by the
    /// time to encrypt *and then decrypt* them once — half the one-way
    /// encryption throughput.
    pub fn encdec_anchors(self, build: CompilerBuild) -> &'static [(usize, f64)] {
        use CompilerBuild::*;
        use CryptoLibrary::*;
        match (self, build) {
            (OpenSsl, _) => &[
                (1, 3.2),
                (16, 49.0),
                (64, 176.0),
                (256, 610.0),
                (1 << 10, 940.0),
                (4 << 10, 1170.0),
                (16 << 10, 1320.0),
                (64 << 10, 1360.0),
                (256 << 10, 1370.0),
                (1 << 20, 1372.0),
                (2 << 20, 1373.0),
                (4 << 20, 1368.0),
            ],
            (BoringSsl, _) => &[
                (1, 3.3),
                (16, 50.0),
                (64, 180.0),
                (256, 620.0),
                (1 << 10, 950.0),
                (4 << 10, 1180.0),
                (16 << 10, 1332.0),
                (64 << 10, 1370.0),
                (256 << 10, 1380.0),
                (1 << 20, 1381.0),
                (2 << 20, 1381.0),
                (4 << 20, 1375.0),
            ],
            (Libsodium, _) => &[
                (1, 2.5),
                (16, 40.0),
                (64, 150.0),
                (256, 409.67),
                (1 << 10, 500.0),
                (4 << 10, 545.0),
                (16 << 10, 565.0),
                (64 << 10, 575.0),
                (256 << 10, 580.0),
                (1 << 20, 582.0),
                (2 << 20, 583.0),
                (4 << 20, 581.0),
            ],
            (CryptoPp, Gcc485) => &[
                (1, 0.35),
                (16, 5.5),
                (64, 22.0),
                (256, 85.0),
                (1 << 10, 260.0),
                (4 << 10, 460.0),
                (16 << 10, 568.0),
                (64 << 10, 560.0),
                (256 << 10, 470.0),
                (1 << 20, 330.0),
                (2 << 20, 273.0),
                (4 << 20, 262.0),
            ],
            // The MVAPICH toolchain vectorizes CryptoPP's bulk path:
            // ≥64 KB it nearly matches Libsodium (Fig. 9).
            (CryptoPp, Mvapich23) => &[
                (1, 0.35),
                (16, 5.5),
                (64, 22.0),
                (256, 90.0),
                (1 << 10, 270.0),
                (4 << 10, 470.0),
                (16 << 10, 570.0),
                (64 << 10, 565.0),
                (256 << 10, 558.0),
                (1 << 20, 552.0),
                (2 << 20, 545.0),
                (4 << 20, 540.0),
            ],
        }
    }

    /// Fixed per-message overhead (ns) of one encryption *or* decryption
    /// call inside the MPI data path: nonce sampling, context setup,
    /// buffer management. Calibrated from the small-message rows of
    /// Tables I and V (see DESIGN.md §5).
    pub fn per_call_overhead_ns(self) -> u64 {
        match self {
            CryptoLibrary::OpenSsl => 1_000,
            CryptoLibrary::BoringSsl => 950,
            CryptoLibrary::Libsodium => 800,
            CryptoLibrary::CryptoPp => 6_000,
        }
    }

    /// Calibrated virtual-time cost (ns) of encrypting `size` bytes once.
    pub fn enc_time_ns(self, build: CompilerBuild, size: usize) -> u64 {
        let encdec_mbs = interp_loglog(self.encdec_anchors(build), size.max(1));
        // enc throughput = 2 × enc-dec throughput.
        let bytes_per_ns = 2.0 * encdec_mbs * 1e6 / 1e9;
        (size as f64 / bytes_per_ns) as u64 + self.per_call_overhead_ns()
    }

    /// Calibrated virtual-time cost (ns) of decrypting `size` bytes once
    /// (GCM decryption ≈ encryption, per the paper).
    pub fn dec_time_ns(self, build: CompilerBuild, size: usize) -> u64 {
        self.enc_time_ns(build, size)
    }
}

/// Piecewise log-log interpolation over `(size, value)` anchors sorted by
/// size; clamps outside the anchor range.
pub fn interp_loglog(anchors: &[(usize, f64)], size: usize) -> f64 {
    debug_assert!(!anchors.is_empty());
    let s = size.max(1) as f64;
    if s <= anchors[0].0 as f64 {
        return anchors[0].1;
    }
    if s >= anchors[anchors.len() - 1].0 as f64 {
        return anchors[anchors.len() - 1].1;
    }
    for w in anchors.windows(2) {
        let (x0, y0) = (w[0].0 as f64, w[0].1);
        let (x1, y1) = (w[1].0 as f64, w[1].1);
        if s == x0 {
            return y0;
        }
        if s == x1 {
            return y1;
        }
        if s <= x1 {
            let t = (s.ln() - x0.ln()) / (x1.ln() - x0.ln());
            return (y0.ln() + t * (y1.ln() - y0.ln())).exp();
        }
    }
    unreachable!("anchors not sorted by size");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libsodium_rejects_128() {
        assert!(!CryptoLibrary::Libsodium.supports(KeySize::Aes128));
        let err = CryptoLibrary::Libsodium
            .instantiate(KeySize::Aes128, &[0u8; 16])
            .unwrap_err();
        assert!(matches!(err, Error::UnsupportedKeySize { bits: 128, .. }));
    }

    #[test]
    fn all_profiles_interoperate() {
        let key = [0x33u8; 32];
        let nonce = [1u8; 12];
        let msg = b"profile interop check";
        let reference = CryptoLibrary::OpenSsl
            .instantiate(KeySize::Aes256, &key)
            .unwrap()
            .seal(&nonce, b"", msg);
        for lib in ALL_LIBRARIES {
            let c = lib.instantiate(KeySize::Aes256, &key).unwrap();
            assert_eq!(c.seal(&nonce, b"", msg), reference, "{}", lib.name());
        }
    }

    #[test]
    fn anchors_hit_papers_quoted_numbers() {
        use CompilerBuild::*;
        let b = CryptoLibrary::BoringSsl;
        assert_eq!(interp_loglog(b.encdec_anchors(Gcc485), 2 << 20), 1381.0);
        assert_eq!(interp_loglog(b.encdec_anchors(Gcc485), 16 << 10), 1332.0);
        let l = CryptoLibrary::Libsodium;
        assert_eq!(interp_loglog(l.encdec_anchors(Gcc485), 256), 409.67);
        assert_eq!(interp_loglog(l.encdec_anchors(Gcc485), 2 << 20), 583.0);
        let c = CryptoLibrary::CryptoPp;
        assert_eq!(interp_loglog(c.encdec_anchors(Gcc485), 16 << 10), 568.0);
        assert_eq!(interp_loglog(c.encdec_anchors(Gcc485), 2 << 20), 273.0);
        // MVAPICH build closes the large-message CryptoPP gap (Fig. 9).
        assert!(interp_loglog(c.encdec_anchors(Mvapich23), 2 << 20) > 500.0);
    }

    #[test]
    fn interp_monotone_between_anchors() {
        let anchors = CryptoLibrary::BoringSsl.encdec_anchors(CompilerBuild::Gcc485);
        let mut prev = 0.0;
        for size in [1usize, 8, 100, 1000, 10_000, 100_000, 1_000_000, 2_000_000] {
            let v = interp_loglog(anchors, size);
            assert!(v >= prev, "throughput curve should be non-decreasing here");
            prev = v;
        }
    }

    #[test]
    fn interp_clamps() {
        let a = [(10usize, 5.0), (100, 50.0)];
        assert_eq!(interp_loglog(&a, 1), 5.0);
        assert_eq!(interp_loglog(&a, 10_000), 50.0);
        let mid = interp_loglog(&a, 31); // ~ geometric midpoint
        assert!(mid > 14.0 && mid < 18.0, "got {mid}");
    }

    #[test]
    fn calibrated_times_rank_libraries() {
        // BoringSSL fastest, CryptoPP slowest, from 256 B upward. (At
        // 1–16 B the paper's own Tables I/V show Libsodium slightly
        // *ahead* of BoringSSL — its per-call overhead is lower — and
        // the calibrated per-call constants reproduce that inversion.)
        let tiny_b = CryptoLibrary::BoringSsl.enc_time_ns(CompilerBuild::Gcc485, 1);
        let tiny_l = CryptoLibrary::Libsodium.enc_time_ns(CompilerBuild::Gcc485, 1);
        assert!(tiny_l < tiny_b, "Libsodium leads at 1 B: {tiny_l} vs {tiny_b}");
        // (Table V keeps Libsodium ahead even at 256 B — 50.66 vs
        // 45.51 MB/s — with the crossover before 1 KB, which the model
        // reproduces.)
        for size in [1024usize, 16 << 10, 2 << 20] {
            let b = CryptoLibrary::BoringSsl.enc_time_ns(CompilerBuild::Gcc485, size);
            let l = CryptoLibrary::Libsodium.enc_time_ns(CompilerBuild::Gcc485, size);
            let c = CryptoLibrary::CryptoPp.enc_time_ns(CompilerBuild::Gcc485, size);
            assert!(b < l && l < c, "size {size}: {b} {l} {c}");
        }
    }
}
