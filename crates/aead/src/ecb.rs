//! Electronic Codebook mode — **insecure**, provided only to demonstrate
//! why ES-MPICH2-style encrypted MPI (the first system surveyed in §II of
//! the paper) is broken: equal plaintext blocks map to equal ciphertext
//! blocks, leaking message structure, and the mode provides no integrity
//! whatsoever.
//!
//! Nothing in the encrypted-MPI data path uses this module; it exists for
//! the `insecure` legacy demos and their tests.

use crate::aes::{BlockDecrypt, BlockEncrypt, SoftAes};
use crate::error::{Error, Result};

/// ECB cipher (PKCS#7 padded). Deliberately named `InsecureEcb`.
pub struct InsecureEcb {
    aes: SoftAes,
}

impl InsecureEcb {
    /// Build from a 16- or 32-byte key.
    pub fn new(key: &[u8]) -> Result<Self> {
        Ok(InsecureEcb {
            aes: SoftAes::new(key)?,
        })
    }

    /// Encrypt with PKCS#7 padding (output is a whole number of blocks).
    pub fn encrypt(&self, plaintext: &[u8]) -> Vec<u8> {
        let mut buf = pad(plaintext);
        for chunk in buf.chunks_exact_mut(16) {
            let block: &mut [u8; 16] = chunk.try_into().unwrap();
            self.aes.encrypt_block(block);
        }
        buf
    }

    /// Decrypt and strip PKCS#7 padding.
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>> {
        if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(16) {
            return Err(Error::NotBlockAligned {
                got: ciphertext.len(),
            });
        }
        let mut buf = ciphertext.to_vec();
        for chunk in buf.chunks_exact_mut(16) {
            let block: &mut [u8; 16] = chunk.try_into().unwrap();
            self.aes.decrypt_block(block);
        }
        unpad(buf)
    }
}

/// PKCS#7 pad to a whole number of 16-byte blocks (always adds ≥1 byte).
pub(crate) fn pad(data: &[u8]) -> Vec<u8> {
    let pad_len = 16 - data.len() % 16;
    let mut out = Vec::with_capacity(data.len() + pad_len);
    out.extend_from_slice(data);
    out.extend(std::iter::repeat_n(pad_len as u8, pad_len));
    out
}

/// Strip PKCS#7 padding.
pub(crate) fn unpad(mut data: Vec<u8>) -> Result<Vec<u8>> {
    let n = *data.last().ok_or(Error::BadPadding)? as usize;
    if n == 0 || n > 16 || n > data.len() {
        return Err(Error::BadPadding);
    }
    if data[data.len() - n..].iter().any(|&b| b as usize != n) {
        return Err(Error::BadPadding);
    }
    data.truncate(data.len() - n);
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let ecb = InsecureEcb::new(&[1u8; 16]).unwrap();
        for len in [0usize, 1, 15, 16, 17, 100] {
            let pt: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = ecb.encrypt(&pt);
            assert_eq!(ct.len() % 16, 0);
            assert_eq!(ecb.decrypt(&ct).unwrap(), pt);
        }
    }

    #[test]
    fn leaks_equal_blocks() {
        // The defining ECB weakness: identical plaintext blocks produce
        // identical ciphertext blocks.
        let ecb = InsecureEcb::new(&[7u8; 32]).unwrap();
        let pt = [0xABu8; 48]; // three identical blocks
        let ct = ecb.encrypt(&pt);
        assert_eq!(&ct[0..16], &ct[16..32]);
        assert_eq!(&ct[16..32], &ct[32..48]);
    }

    #[test]
    fn no_integrity() {
        // Swapping ciphertext blocks decrypts "successfully" to a
        // permuted plaintext — ECB detects nothing.
        let ecb = InsecureEcb::new(&[7u8; 16]).unwrap();
        let mut pt = vec![0u8; 32];
        pt[0] = 1;
        pt[16] = 2;
        let mut ct = ecb.encrypt(&pt);
        ct.swap(0, 16);
        ct.swap(1, 17);
        // (swap whole blocks)
        let ct2: Vec<u8> = {
            let mut v = ecb.encrypt(&pt);
            let (a, rest) = v.split_at_mut(16);
            let (b, _) = rest.split_at_mut(16);
            a.swap_with_slice(b);
            v
        };
        let out = ecb.decrypt(&ct2).unwrap();
        assert_eq!(out[0], 2, "blocks silently permuted");
        assert_eq!(out[16], 1);
    }

    #[test]
    fn bad_padding_rejected() {
        let ecb = InsecureEcb::new(&[7u8; 16]).unwrap();
        assert!(ecb.decrypt(&[0u8; 8]).is_err());
        assert!(unpad(vec![1, 2, 3, 0]).is_err());
        assert!(unpad(vec![5, 5, 5, 5]).is_err()); // says 5, only 4 bytes
        assert!(unpad(vec![2, 3]).is_err());
    }
}
