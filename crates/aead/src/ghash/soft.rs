//! Shoup's 4-bit table GHASH (the classic software method, as used by
//! mbedTLS and the table-driven paths of CryptoPP).
//!
//! A 16-entry table of `i · H` for all 4-bit polynomials `i` is
//! precomputed; each input byte then costs two table lookups and two
//! 4-bit reductions via the `LAST4` constant table.

use super::{GhashImpl, R};

/// Reduction constants for shifting 4 bits out of the field element:
/// `LAST4[rem] = rem · (x⁻⁴ mod g)` packed into the top 16 bits.
const LAST4: [u16; 16] = [
    0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0, 0xe100, 0xfd20, 0xd940,
    0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
];

/// Software GHASH engine keyed with hash subkey `H`.
pub struct GhashSoft {
    table: [u128; 16],
}

impl GhashSoft {
    /// Precompute the 16-entry nibble table for `h`.
    pub fn new(h: u128) -> Self {
        let mut table = [0u128; 16];
        table[8] = h;
        let mut v = h;
        for i in [4usize, 2, 1] {
            v = mul_x(v);
            table[i] = v;
        }
        for i in [2usize, 4, 8] {
            for j in 1..i {
                table[i + j] = table[i] ^ table[j];
            }
        }
        GhashSoft { table }
    }
}

/// Divide by x in the reflected representation (shift right, reduce).
#[inline]
fn mul_x(v: u128) -> u128 {
    let lsb = v & 1;
    let mut out = v >> 1;
    if lsb == 1 {
        out ^= R;
    }
    out
}

impl GhashImpl for GhashSoft {
    fn mult(&self, x: u128) -> u128 {
        let b = x.to_be_bytes();
        let mut z = self.table[(b[15] & 0x0f) as usize];
        for i in (0..16).rev() {
            let lo = (b[i] & 0x0f) as usize;
            let hi = (b[i] >> 4) as usize;
            if i != 15 {
                let rem = (z & 0x0f) as usize;
                z >>= 4;
                z ^= (LAST4[rem] as u128) << 112;
                z ^= self.table[lo];
            }
            let rem = (z & 0x0f) as usize;
            z >>= 4;
            z ^= (LAST4[rem] as u128) << 112;
            z ^= self.table[hi];
        }
        z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghash::gmul_bitwise;

    #[test]
    fn table_entries_are_nibble_multiples() {
        let h = 0x123456789abcdef0fedcba9876543210u128;
        let g = GhashSoft::new(h);
        // table[i] must equal (nibble polynomial i placed at x^124..x^127
        // reflected position) · H. In the reflected u128 representation a
        // 4-bit polynomial i sits in the low nibble as bits of x^124..x^127
        // ... easiest check: table[1] = H / x^3? Instead verify through
        // the multiplicative identity used to build the table:
        // table[8] = H, table[4] = table[8]/x, etc.
        assert_eq!(g.table[8], h);
        assert_eq!(g.table[4], mul_x(h));
        assert_eq!(g.table[12], g.table[8] ^ g.table[4]);
        assert_eq!(g.table[0], 0);
    }

    #[test]
    fn mult_edge_values() {
        let h = 0xe1000000000000000000000000000000u128;
        let g = GhashSoft::new(h);
        for x in [0u128, 1, u128::MAX, 1 << 127, 0xf, 0xf0] {
            assert_eq!(g.mult(x), gmul_bitwise(x, h), "x={x:032x}");
        }
    }
}
