//! PCLMULQDQ-based GHASH (Intel carry-less multiplication white paper,
//! "reflected" algorithm), with 4-block aggregation using precomputed
//! powers H¹..H⁴ so the four multiplications per group are independent
//! and can overlap in the pipeline — the technique behind OpenSSL's and
//! BoringSSL's GHASH speed.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

use super::{be_block, GhashImpl};

/// Hardware GHASH engine keyed with hash subkey `H`.
pub struct GhashClmul {
    /// Powers H¹, H², H³, H⁴ (as reflected u128 field elements).
    powers: [u128; 4],
}

// SAFETY: plain data.
unsafe impl Send for GhashClmul {}
unsafe impl Sync for GhashClmul {}

impl GhashClmul {
    /// Precompute powers of `h`. Panics if the CPU lacks PCLMULQDQ
    /// (callers gate on [`crate::aes::hardware_acceleration_available`]).
    pub fn new(h: u128) -> Self {
        assert!(
            std::arch::is_x86_feature_detected!("pclmulqdq"),
            "GhashClmul requires PCLMULQDQ"
        );
        // SAFETY: feature checked above.
        let h2 = unsafe { gfmul_u128(h, h) };
        let h3 = unsafe { gfmul_u128(h2, h) };
        let h4 = unsafe { gfmul_u128(h3, h) };
        GhashClmul {
            powers: [h, h2, h3, h4],
        }
    }
}

#[inline]
fn to_m128(x: u128) -> __m128i {
    // SAFETY: plain bit reinterpretation.
    unsafe { _mm_set_epi64x((x >> 64) as i64, x as u64 as i64) }
}

#[inline]
fn from_m128(v: __m128i) -> u128 {
    let mut out = [0u8; 16];
    // SAFETY: storing 16 bytes into a 16-byte array.
    unsafe { _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, v) };
    u128::from_le_bytes(out)
}

/// GF(2¹²⁸) multiply of two reflected field elements via PCLMULQDQ.
///
/// # Safety
/// Requires the `pclmulqdq` and `sse2` CPU features.
#[target_feature(enable = "pclmulqdq", enable = "sse2")]
unsafe fn gfmul_u128(a: u128, b: u128) -> u128 {
    from_m128(gfmul(to_m128(a), to_m128(b)))
}

/// Intel white-paper `gfmul` ("Figure 5"): carry-less 128×128 multiply,
/// shift the 256-bit product left by one (bit-reflection fix-up), then
/// reduce modulo x¹²⁸ + x⁷ + x² + x + 1.
///
/// # Safety
/// Requires the `pclmulqdq` and `sse2` CPU features.
#[target_feature(enable = "pclmulqdq", enable = "sse2")]
unsafe fn gfmul(a: __m128i, b: __m128i) -> __m128i {
    let mut tmp3 = _mm_clmulepi64_si128(a, b, 0x00);
    let mut tmp4 = _mm_clmulepi64_si128(a, b, 0x10);
    let tmp5 = _mm_clmulepi64_si128(a, b, 0x01);
    let mut tmp6 = _mm_clmulepi64_si128(a, b, 0x11);

    tmp4 = _mm_xor_si128(tmp4, tmp5);
    let tmp5b = _mm_slli_si128(tmp4, 8);
    tmp4 = _mm_srli_si128(tmp4, 8);
    tmp3 = _mm_xor_si128(tmp3, tmp5b);
    tmp6 = _mm_xor_si128(tmp6, tmp4);

    // Shift the 256-bit product left by 1 bit.
    let tmp7 = _mm_srli_epi32(tmp3, 31);
    let mut tmp8 = _mm_srli_epi32(tmp6, 31);
    tmp3 = _mm_slli_epi32(tmp3, 1);
    tmp6 = _mm_slli_epi32(tmp6, 1);
    let tmp9 = _mm_srli_si128(tmp7, 12);
    tmp8 = _mm_slli_si128(tmp8, 4);
    let tmp7 = _mm_slli_si128(tmp7, 4);
    tmp3 = _mm_or_si128(tmp3, tmp7);
    tmp6 = _mm_or_si128(tmp6, tmp8);
    tmp6 = _mm_or_si128(tmp6, tmp9);

    // Reduction.
    let tmp7 = _mm_slli_epi32(tmp3, 31);
    let tmp8 = _mm_slli_epi32(tmp3, 30);
    let tmp9 = _mm_slli_epi32(tmp3, 25);
    let mut tmp7 = _mm_xor_si128(tmp7, tmp8);
    tmp7 = _mm_xor_si128(tmp7, tmp9);
    let tmp8 = _mm_srli_si128(tmp7, 4);
    let tmp7 = _mm_slli_si128(tmp7, 12);
    tmp3 = _mm_xor_si128(tmp3, tmp7);

    let mut tmp2 = _mm_srli_epi32(tmp3, 1);
    let tmp4b = _mm_srli_epi32(tmp3, 2);
    let tmp5c = _mm_srli_epi32(tmp3, 7);
    tmp2 = _mm_xor_si128(tmp2, tmp4b);
    tmp2 = _mm_xor_si128(tmp2, tmp5c);
    tmp2 = _mm_xor_si128(tmp2, tmp8);
    tmp3 = _mm_xor_si128(tmp3, tmp2);
    _mm_xor_si128(tmp6, tmp3)
}

impl GhashImpl for GhashClmul {
    fn mult(&self, x: u128) -> u128 {
        // SAFETY: constructor verified the features.
        unsafe { gfmul_u128(x, self.powers[0]) }
    }

    fn ghash(&self, aad: &[u8], data: &[u8]) -> [u8; 16] {
        let [h, h2, h3, h4] = self.powers;
        let mut y = 0u128;

        // AAD: chained (AAD is small in the MPI use case).
        let mut chunks = aad.chunks_exact(16);
        for c in &mut chunks {
            y = self.mult(y ^ be_block(c));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 16];
            last[..rem.len()].copy_from_slice(rem);
            y = self.mult(y ^ u128::from_be_bytes(last));
        }

        // Data: 4-block aggregation.
        let mut groups = data.chunks_exact(64);
        for g in &mut groups {
            let x0 = be_block(&g[0..16]);
            let x1 = be_block(&g[16..32]);
            let x2 = be_block(&g[32..48]);
            let x3 = be_block(&g[48..64]);
            // SAFETY: constructor verified the features.
            unsafe {
                y = gfmul_u128(y ^ x0, h4)
                    ^ gfmul_u128(x1, h3)
                    ^ gfmul_u128(x2, h2)
                    ^ gfmul_u128(x3, h);
            }
        }
        let tail = groups.remainder();
        let mut chunks = tail.chunks_exact(16);
        for c in &mut chunks {
            y = self.mult(y ^ be_block(c));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut last = [0u8; 16];
            last[..rem.len()].copy_from_slice(rem);
            y = self.mult(y ^ u128::from_be_bytes(last));
        }

        let lens = ((aad.len() as u128 * 8) << 64) | (data.len() as u128 * 8);
        y = self.mult(y ^ lens);
        y.to_be_bytes()
    }
}
