//! GHASH — the GF(2¹²⁸) universal hash of GCM (NIST SP 800-38D §6.4).
//!
//! Field elements are represented as `u128` values obtained from
//! `u128::from_be_bytes(block)`; GCM's "reflected" bit order means the
//! most-significant bit of the integer is the coefficient of x⁰.
//!
//! Three multipliers are provided:
//!
//! * [`gmul_bitwise`] — the literal one-bit-at-a-time spec algorithm,
//!   used as the reference oracle in tests;
//! * [`GhashSoft`] — Shoup's 4-bit table method (what table-driven
//!   software libraries such as CryptoPP use);
//! * [`GhashClmul`] — PCLMULQDQ carry-less multiplication with 4-block
//!   aggregation (what OpenSSL/BoringSSL use).

mod soft;
#[cfg(target_arch = "x86_64")]
mod pclmul;

pub use soft::GhashSoft;
#[cfg(target_arch = "x86_64")]
pub use pclmul::GhashClmul;

/// The reduction polynomial term: x⁷+x²+x+1 reflected into the top byte.
pub(crate) const R: u128 = 0xe1u128 << 120;

/// Reference GF(2¹²⁸) multiply, bit by bit (NIST SP 800-38D Algorithm 1).
pub fn gmul_bitwise(x: u128, y: u128) -> u128 {
    let mut z = 0u128;
    let mut v = y;
    for i in 0..128 {
        if (x >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// A keyed GHASH engine: multiplication by the fixed hash subkey `H`.
pub trait GhashImpl: Send + Sync {
    /// Compute `x · H` in GF(2¹²⁸).
    fn mult(&self, x: u128) -> u128;

    /// GHASH of `aad ‖ pad ‖ data ‖ pad ‖ len(aad)₆₄ ‖ len(data)₆₄`.
    ///
    /// Engines may override this for block-level parallelism; the default
    /// chains block by block.
    fn ghash(&self, aad: &[u8], data: &[u8]) -> [u8; 16] {
        let mut y = 0u128;
        for part in [aad, data] {
            let mut chunks = part.chunks_exact(16);
            for c in &mut chunks {
                y = self.mult(y ^ be_block(c));
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let mut last = [0u8; 16];
                last[..rem.len()].copy_from_slice(rem);
                y = self.mult(y ^ u128::from_be_bytes(last));
            }
        }
        let lens =
            ((aad.len() as u128 * 8) << 64) | (data.len() as u128 * 8);
        y = self.mult(y ^ lens);
        y.to_be_bytes()
    }
}

#[inline]
pub(crate) fn be_block(c: &[u8]) -> u128 {
    let mut b = [0u8; 16];
    b.copy_from_slice(c);
    u128::from_be_bytes(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// McGrew–Viega GCM spec, Test Case 2: H = E(K, 0¹²⁸) for the zero
    /// AES-128 key; GHASH(H, {}, C) with the known ciphertext block.
    #[test]
    fn ghash_known_vector() {
        // From the GCM spec test case 2:
        // H = 66e94bd4ef8a2c3b884cfa59ca342b2e
        // C = 0388dace60b6a392f328c2b971b2fe78
        // GHASH(H, {}, C) = f38cbb1ad69223dcc3457ae5b6b0f885
        let h = 0x66e94bd4ef8a2c3b884cfa59ca342b2eu128;
        let c = hex128("0388dace60b6a392f328c2b971b2fe78");
        let expect = hex128("f38cbb1ad69223dcc3457ae5b6b0f885");
        let soft = GhashSoft::new(h);
        let got = soft.ghash(b"", &c.to_be_bytes());
        assert_eq!(u128::from_be_bytes(got), expect);
        // And the bitwise oracle agrees.
        let y1 = gmul_bitwise(c, h);
        let lens = 128u128;
        let y2 = gmul_bitwise(y1 ^ lens, h);
        assert_eq!(y2, expect);
    }

    #[test]
    fn bitwise_identity_and_commutativity() {
        let a = 0x0123456789abcdef0fedcba987654321u128;
        let b = 0xdeadbeefcafebabe1122334455667788u128;
        assert_eq!(gmul_bitwise(a, b), gmul_bitwise(b, a));
        // Multiplying by 1 (the polynomial "1" = MSB set) is identity.
        let one = 1u128 << 127;
        assert_eq!(gmul_bitwise(a, one), a);
        assert_eq!(gmul_bitwise(one, b), b);
        // Zero annihilates.
        assert_eq!(gmul_bitwise(a, 0), 0);
    }

    #[test]
    fn soft_table_matches_bitwise() {
        let h = 0x66e94bd4ef8a2c3b884cfa59ca342b2eu128;
        let soft = GhashSoft::new(h);
        let mut x = 0x0123456789abcdef0fedcba987654321u128;
        for _ in 0..64 {
            assert_eq!(soft.mult(x), gmul_bitwise(x, h));
            x = x.rotate_left(13) ^ 0x9e3779b97f4a7c15u128;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn clmul_matches_bitwise() {
        if !crate::aes::hardware_acceleration_available() {
            return;
        }
        let h = 0x66e94bd4ef8a2c3b884cfa59ca342b2eu128;
        let clmul = GhashClmul::new(h);
        let mut x = 0xdeadbeefcafebabe1122334455667788u128;
        for _ in 0..64 {
            assert_eq!(clmul.mult(x), gmul_bitwise(x, h), "x={x:032x}");
            x = x.wrapping_mul(0x2545F4914F6CDD1D).rotate_left(31);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn clmul_aggregated_ghash_matches_soft() {
        if !crate::aes::hardware_acceleration_available() {
            return;
        }
        let h = 0xaaaabbbbccccddddeeeeffff00001111u128;
        let soft = GhashSoft::new(h);
        let clmul = GhashClmul::new(h);
        for (aad_len, data_len) in
            [(0usize, 0usize), (0, 16), (3, 5), (16, 64), (20, 63), (0, 257), (100, 1000)]
        {
            let aad: Vec<u8> = (0..aad_len).map(|i| i as u8).collect();
            let data: Vec<u8> = (0..data_len).map(|i| (i * 3 + 1) as u8).collect();
            assert_eq!(
                soft.ghash(&aad, &data),
                clmul.ghash(&aad, &data),
                "aad={aad_len} data={data_len}"
            );
        }
    }

    pub(crate) fn hex128(s: &str) -> u128 {
        u128::from_str_radix(s, 16).unwrap()
    }
}
