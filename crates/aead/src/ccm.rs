//! AES-CCM — Counter with CBC-MAC (NIST SP 800-38C).
//!
//! §III-A of the paper: "Among the standardized encryption schemes, only
//! GCM and CCM satisfy both privacy and integrity, but GCM is the faster
//! one." CCM is implemented here so that claim is *measurable* (see the
//! `gcm_vs_ccm` Criterion bench) — the MPI data path itself always uses
//! GCM, as in the paper.
//!
//! Full SP 800-38C parameterization: nonce length 7–13 bytes
//! (`q = 15 − n` length-field bytes), tag length 4–16 even bytes.
//! CCM makes two AES passes over the payload (CBC-MAC + CTR), which is
//! exactly why GCM (one AES pass + GHASH) outruns it.

use crate::aes::{BlockEncrypt, SoftAes};
use crate::ct::ct_eq;
use crate::error::{Error, Result};

#[cfg(target_arch = "x86_64")]
use crate::aes::AesNi;

/// AES-CCM cipher with fixed nonce/tag lengths chosen at construction.
pub struct AesCcm {
    aes: Box<dyn BlockEncrypt>,
    nonce_len: usize,
    tag_len: usize,
}

impl AesCcm {
    /// Build with a 16- or 32-byte key, `nonce_len ∈ 7..=13`, and an
    /// even `tag_len ∈ 4..=16`.
    pub fn new(key: &[u8], nonce_len: usize, tag_len: usize) -> Result<Self> {
        assert!((7..=13).contains(&nonce_len), "CCM nonce length 7..=13");
        assert!(
            (4..=16).contains(&tag_len) && tag_len.is_multiple_of(2),
            "CCM tag length 4..=16, even"
        );
        let aes: Box<dyn BlockEncrypt> = {
            #[cfg(target_arch = "x86_64")]
            {
                if crate::aes::hardware_acceleration_available() {
                    Box::new(AesNi::new(key)?)
                } else {
                    Box::new(SoftAes::new(key)?)
                }
            }
            #[cfg(not(target_arch = "x86_64"))]
            {
                Box::new(SoftAes::new(key)?)
            }
        };
        Ok(AesCcm {
            aes,
            nonce_len,
            tag_len,
        })
    }

    /// The default MPI-style geometry: 12-byte nonce, 16-byte tag.
    pub fn new_default(key: &[u8]) -> Result<Self> {
        Self::new(key, 12, 16)
    }

    fn q(&self) -> usize {
        15 - self.nonce_len
    }

    /// Counter block `Ctr_i`: `flags(q−1) ‖ nonce ‖ i` (i big-endian in
    /// the trailing q bytes).
    fn ctr_block(&self, nonce: &[u8], i: u64) -> [u8; 16] {
        let q = self.q();
        let mut b = [0u8; 16];
        b[0] = (q - 1) as u8;
        b[1..1 + self.nonce_len].copy_from_slice(nonce);
        let ib = i.to_be_bytes();
        b[16 - q..].copy_from_slice(&ib[8 - q..]);
        b
    }

    /// CBC-MAC over `B0 ‖ aad-blocks ‖ payload-blocks`.
    fn cbc_mac(&self, nonce: &[u8], aad: &[u8], payload: &[u8]) -> [u8; 16] {
        let q = self.q();
        // B0: flags = [reserved:1][Adata:1][(t−2)/2:3][q−1:3].
        let mut b0 = [0u8; 16];
        b0[0] = ((!aad.is_empty() as u8) << 6)
            | ((((self.tag_len - 2) / 2) as u8) << 3)
            | (q - 1) as u8;
        b0[1..1 + self.nonce_len].copy_from_slice(nonce);
        let plen = (payload.len() as u64).to_be_bytes();
        b0[16 - q..].copy_from_slice(&plen[8 - q..]);

        let mut x = b0;
        self.aes.encrypt_block(&mut x);

        let absorb = |data: &[u8], x: &mut [u8; 16]| {
            for chunk in data.chunks(16) {
                for (i, byte) in chunk.iter().enumerate() {
                    x[i] ^= byte;
                }
                self.aes.encrypt_block(x);
            }
        };

        if !aad.is_empty() {
            assert!(
                (aad.len() as u64) < (1 << 16) - (1 << 8),
                "CCM AAD longer than 2^16-2^8 bytes is not supported"
            );
            // 2-byte length prefix, then the AAD, zero-padded to blocks.
            let mut first = Vec::with_capacity(2 + aad.len());
            first.extend_from_slice(&(aad.len() as u16).to_be_bytes());
            first.extend_from_slice(aad);
            let pad = (16 - first.len() % 16) % 16;
            first.extend(std::iter::repeat_n(0, pad));
            absorb(&first, &mut x);
        }
        if !payload.is_empty() {
            let mut padded = payload.to_vec();
            let pad = (16 - padded.len() % 16) % 16;
            padded.extend(std::iter::repeat_n(0, pad));
            absorb(&padded, &mut x);
        }
        x
    }

    /// Encrypt: returns `ciphertext ‖ tag`.
    pub fn seal(&self, nonce: &[u8], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        assert_eq!(nonce.len(), self.nonce_len, "nonce length mismatch");
        let mac = self.cbc_mac(nonce, aad, plaintext);

        let mut out = Vec::with_capacity(plaintext.len() + self.tag_len);
        out.extend_from_slice(plaintext);
        let ctr1 = self.ctr_block(nonce, 1);
        self.aes.ctr_apply(&ctr1, &mut out);

        // Tag = MSB_t(mac ⊕ E(K, Ctr_0)).
        let mut s0 = self.ctr_block(nonce, 0);
        self.aes.encrypt_block(&mut s0);
        for i in 0..self.tag_len {
            out.push(mac[i] ^ s0[i]);
        }
        out
    }

    /// Decrypt and verify `ciphertext ‖ tag`.
    pub fn open(&self, nonce: &[u8], aad: &[u8], ct_and_tag: &[u8]) -> Result<Vec<u8>> {
        assert_eq!(nonce.len(), self.nonce_len, "nonce length mismatch");
        if ct_and_tag.len() < self.tag_len {
            return Err(Error::CiphertextTooShort {
                got: ct_and_tag.len(),
            });
        }
        let split = ct_and_tag.len() - self.tag_len;
        let mut pt = ct_and_tag[..split].to_vec();
        let ctr1 = self.ctr_block(nonce, 1);
        self.aes.ctr_apply(&ctr1, &mut pt);

        let mac = self.cbc_mac(nonce, aad, &pt);
        let mut s0 = self.ctr_block(nonce, 0);
        self.aes.encrypt_block(&mut s0);
        let expect: Vec<u8> = (0..self.tag_len).map(|i| mac[i] ^ s0[i]).collect();
        if !ct_eq(&expect, &ct_and_tag[split..]) {
            return Err(Error::AuthFailure);
        }
        Ok(pt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    const KEY: &str = "404142434445464748494a4b4c4d4e4f";

    /// NIST SP 800-38C Example 1: 7-byte nonce, 4-byte tag.
    #[test]
    fn nist_example_1() {
        let ccm = AesCcm::new(&hex(KEY), 7, 4).unwrap();
        let out = ccm.seal(&hex("10111213141516"), &hex("0001020304050607"), &hex("20212223"));
        assert_eq!(out, hex("7162015b4dac255d"));
        let pt = ccm
            .open(&hex("10111213141516"), &hex("0001020304050607"), &out)
            .unwrap();
        assert_eq!(pt, hex("20212223"));
    }

    /// NIST SP 800-38C Example 2: 8-byte nonce, 6-byte tag.
    #[test]
    fn nist_example_2() {
        let ccm = AesCcm::new(&hex(KEY), 8, 6).unwrap();
        let out = ccm.seal(
            &hex("1011121314151617"),
            &hex("000102030405060708090a0b0c0d0e0f"),
            &hex("202122232425262728292a2b2c2d2e2f"),
        );
        assert_eq!(
            out,
            hex("d2a1f0e051ea5f62081a7792073d593d1fc64fbfaccd")
        );
    }

    #[test]
    fn roundtrip_various_geometries() {
        for (nl, tl) in [(7usize, 4usize), (12, 16), (13, 8), (11, 10)] {
            let ccm = AesCcm::new(&[0x5Au8; 32], nl, tl).unwrap();
            let nonce = vec![3u8; nl];
            for len in [0usize, 1, 15, 16, 17, 100, 1000] {
                let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
                let ct = ccm.seal(&nonce, b"aad", &msg);
                assert_eq!(ct.len(), len + tl);
                assert_eq!(ccm.open(&nonce, b"aad", &ct).unwrap(), msg);
            }
        }
    }

    #[test]
    fn tamper_detected() {
        let ccm = AesCcm::new_default(&[1u8; 16]).unwrap();
        let nonce = [2u8; 12];
        let mut ct = ccm.seal(&nonce, b"", b"integrity matters");
        for i in 0..ct.len() {
            ct[i] ^= 0x80;
            assert_eq!(ccm.open(&nonce, b"", &ct), Err(Error::AuthFailure), "byte {i}");
            ct[i] ^= 0x80;
        }
        assert!(ccm.open(&nonce, b"", &ct).is_ok());
        // Wrong AAD also fails.
        assert_eq!(ccm.open(&nonce, b"x", &ct), Err(Error::AuthFailure));
    }

    #[test]
    fn ccm_and_gcm_are_different_schemes() {
        let key = [9u8; 32];
        let ccm = AesCcm::new_default(&key).unwrap();
        let gcm = crate::gcm::AesGcm::new(&key).unwrap();
        let nonce = [1u8; 12];
        assert_ne!(ccm.seal(&nonce, b"", b"hello"), gcm.seal(&nonce, b"", b"hello"));
    }
}
