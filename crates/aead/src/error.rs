//! Error type for the crypto substrate.

use std::fmt;

/// Crypto-layer result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the crypto substrate.
///
/// Note that [`Error::AuthFailure`] deliberately carries no detail: a
/// decryption either yields the authentic plaintext or nothing, per the
/// AEAD contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Key length is not 16 or 32 bytes.
    InvalidKeyLength {
        /// The offending length.
        got: usize,
    },
    /// The selected backend requires a key size it does not support
    /// (e.g. Libsodium's AES-GCM is 256-bit only).
    UnsupportedKeySize {
        /// Backend name.
        backend: &'static str,
        /// Requested key size in bits.
        bits: usize,
    },
    /// The ciphertext failed authentication (wrong key, wrong nonce,
    /// tampered ciphertext, or tampered associated data).
    AuthFailure,
    /// Ciphertext shorter than the mandatory 16-byte tag.
    CiphertextTooShort {
        /// The offending length.
        got: usize,
    },
    /// Input not a multiple of the block size (ECB/CBC without padding).
    NotBlockAligned {
        /// The offending length.
        got: usize,
    },
    /// Invalid PKCS#7 padding encountered while unpadding.
    BadPadding,
    /// The CPU lacks the instruction-set extensions this engine needs.
    HardwareUnavailable,
    /// A one-time-pad operation ran past the end of the pad key.
    PadExhausted,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidKeyLength { got } => {
                write!(f, "invalid AES key length {got} (expected 16 or 32 bytes)")
            }
            Error::UnsupportedKeySize { backend, bits } => {
                write!(f, "backend {backend} does not support {bits}-bit keys")
            }
            Error::AuthFailure => write!(f, "ciphertext authentication failed"),
            Error::CiphertextTooShort { got } => {
                write!(f, "ciphertext of {got} bytes is shorter than the 16-byte tag")
            }
            Error::NotBlockAligned { got } => {
                write!(f, "input length {got} is not a multiple of the 16-byte block")
            }
            Error::BadPadding => write!(f, "invalid PKCS#7 padding"),
            Error::HardwareUnavailable => {
                write!(f, "CPU lacks the required instruction-set extensions")
            }
            Error::PadExhausted => write!(f, "one-time pad exhausted"),
        }
    }
}

impl std::error::Error for Error {}
