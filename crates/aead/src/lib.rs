//! # empi-aead — cryptographic substrate for encrypted MPI
//!
//! This crate implements, from scratch, everything the CLUSTER'19 paper
//! *"An Empirical Study of Cryptographic Libraries for MPI Communications"*
//! needs from its four cryptographic libraries (OpenSSL, BoringSSL,
//! Libsodium, CryptoPP):
//!
//! * **AES-128 / AES-256** block cipher with three engines:
//!   a portable T-table software implementation ([`aes::SoftAes`]),
//!   a hardware AES-NI single-block engine, and an 8-block interleaved
//!   AES-NI pipeline used for bulk CTR keystream generation (the source
//!   of OpenSSL/BoringSSL's speed advantage).
//! * **GHASH** over GF(2¹²⁸) with a Shoup 4-bit-table software engine
//!   ([`ghash::GhashSoft`]) and a PCLMULQDQ engine with 4-block
//!   aggregation ([`ghash::GhashClmul`]).
//! * **AES-GCM** ([`gcm::AesGcm`]) per NIST SP 800-38D: 96-bit nonces,
//!   128-bit tags, associated data, constant-time tag verification.
//! * Classical modes — [`ecb`], [`cbc`], [`ctr`] — and a big-key one-time
//!   pad ([`otp`]) used to *demonstrate* the insecurity of the prior
//!   encrypted-MPI systems surveyed in §II of the paper. These are
//!   intentionally exported under explicit "insecure" names.
//! * [`sha256`] for the (also insecure) encrypt-with-checksum legacy
//!   construction.
//! * [`profile`] — the paper's four libraries as selectable backends with
//!   calibrated throughput anchor curves digitized from Figs. 2 and 9,
//!   used by the simulator's `Calibrated` timing mode.
//!
//! The real cryptography always executes; the profiles only decide *which
//! engine combination* runs and how virtual time is charged.
//!
//! ```
//! use empi_aead::profile::{CryptoLibrary, KeySize};
//!
//! let key = [7u8; 32];
//! let cipher = CryptoLibrary::BoringSsl.instantiate(KeySize::Aes256, &key).unwrap();
//! let nonce = [1u8; 12];
//! let ct = cipher.seal(&nonce, b"", b"attack at dawn");
//! assert_eq!(ct.len(), 14 + 16); // ciphertext + tag
//! let pt = cipher.open(&nonce, b"", &ct).unwrap();
//! assert_eq!(&pt, b"attack at dawn");
//! ```

pub mod aes;
pub mod cbc;
pub mod ccm;
pub mod chunked;
pub mod ct;
pub mod ctr;
pub mod ecb;
pub mod error;
pub mod gcm;
pub mod ghash;
pub mod nonce;
pub mod otp;
pub mod profile;
pub mod sha256;

pub use error::{Error, Result};
pub use gcm::AesGcm;
pub use profile::{CryptoLibrary, KeySize};

/// Number of bytes AES-GCM adds to every message on the wire:
/// a 12-byte nonce plus a 16-byte authentication tag.
pub const WIRE_OVERHEAD: usize = NONCE_LEN + TAG_LEN;
/// AES-GCM nonce length in bytes (96 bits, per NIST SP 800-38D).
pub const NONCE_LEN: usize = 12;
/// AES-GCM authentication tag length in bytes (128 bits).
pub const TAG_LEN: usize = 16;
/// AES block length in bytes.
pub const BLOCK_LEN: usize = 16;
