//! Chunked AEAD: one message sealed as a sequence of independent
//! AES-GCM records, the cryptographic core of the CryptMPI-style
//! pipelined path (`empi-pipeline`).
//!
//! A message of `total_len` bytes is split into `total` chunks of at
//! most `chunk_size` bytes. Chunk `i` is sealed with:
//!
//! * nonce `base + i` — the message's base nonce with its trailing
//!   64-bit word incremented by the chunk index, carrying into the
//!   4-byte prefix on overflow (the standard invocation-counter
//!   construction, so one nonce draw covers the whole message; see
//!   `NonceSource::next_nonce_block`), and
//! * AAD `msg_id ‖ index ‖ total ‖ total_len` — binding each record to
//!   its position and to the message geometry, so a reordered,
//!   duplicated, truncated, or cross-message-spliced chunk fails
//!   authentication even though every record verifies in isolation.
//!
//! This module is pure crypto: no timing, no transport. Framing (what
//! precedes each record on the wire) lives in `empi-mpi::chunk`;
//! scheduling (when each seal/open runs) lives in `empi-pipeline`.

use crate::gcm::AesGcm;
use crate::{Result, NONCE_LEN, TAG_LEN};

/// Byte length of the per-chunk associated data.
pub const CHUNK_AAD_LEN: usize = 8 + 4 + 4 + 8;

/// Number of chunks a `total_len`-byte message splits into (at least 1:
/// the empty message is one empty chunk).
pub fn chunk_count(total_len: usize, chunk_size: usize) -> u32 {
    assert!(chunk_size > 0, "chunk size must be positive");
    (total_len.div_ceil(chunk_size).max(1)) as u32
}

/// Byte range of chunk `index` within a `total_len`-byte message.
pub fn chunk_range(total_len: usize, chunk_size: usize, index: u32) -> std::ops::Range<usize> {
    let start = index as usize * chunk_size;
    start..total_len.min(start + chunk_size)
}

/// Nonce of chunk `index`: the base nonce with its trailing 64-bit
/// big-endian word incremented by `index`, carrying into the 4-byte
/// prefix on overflow. Treating the whole 96-bit nonce as one
/// big-endian counter means a Random/Seeded base near `u64::MAX` in
/// its tail cannot collide with a later draw whose tail starts low:
/// the two differ in the prefix after the carry.
pub fn derive_chunk_nonce(base: &[u8; NONCE_LEN], index: u32) -> [u8; NONCE_LEN] {
    let mut n = *base;
    let mut tail = [0u8; 8];
    tail.copy_from_slice(&n[4..]);
    let (v, carry) = u64::from_be_bytes(tail).overflowing_add(index as u64);
    n[4..].copy_from_slice(&v.to_be_bytes());
    if carry {
        let mut head = [0u8; 4];
        head.copy_from_slice(&n[..4]);
        let h = u32::from_be_bytes(head).wrapping_add(1);
        n[..4].copy_from_slice(&h.to_be_bytes());
    }
    n
}

/// Inverse of [`derive_chunk_nonce`]: recover the base nonce from the
/// nonce chunk `index` was sealed under, by subtracting `index` from
/// the trailing 64-bit big-endian word and borrowing from the 4-byte
/// prefix on underflow. Because derivation is a plain 96-bit
/// big-endian add, *any* intact chunk of a message suffices to
/// reconstruct the base — which is what lets a receiver re-derive a
/// damaged train's geometry from whichever frames survived.
pub fn undo_chunk_nonce(nonce: &[u8; NONCE_LEN], index: u32) -> [u8; NONCE_LEN] {
    let mut n = *nonce;
    let mut tail = [0u8; 8];
    tail.copy_from_slice(&n[4..]);
    let (v, borrow) = u64::from_be_bytes(tail).overflowing_sub(index as u64);
    n[4..].copy_from_slice(&v.to_be_bytes());
    if borrow {
        let mut head = [0u8; 4];
        head.copy_from_slice(&n[..4]);
        let h = u32::from_be_bytes(head).wrapping_sub(1);
        n[..4].copy_from_slice(&h.to_be_bytes());
    }
    n
}

/// Associated data of chunk `index`: `msg_id ‖ index ‖ total ‖
/// total_len`, all big-endian.
pub fn chunk_aad(msg_id: u64, index: u32, total: u32, total_len: u64) -> [u8; CHUNK_AAD_LEN] {
    let mut aad = [0u8; CHUNK_AAD_LEN];
    aad[..8].copy_from_slice(&msg_id.to_be_bytes());
    aad[8..12].copy_from_slice(&index.to_be_bytes());
    aad[12..16].copy_from_slice(&total.to_be_bytes());
    aad[16..].copy_from_slice(&total_len.to_be_bytes());
    aad
}

/// Seals the chunks of one message under a fixed geometry.
pub struct ChunkedSealer<'a> {
    cipher: &'a AesGcm,
    msg_id: u64,
    base_nonce: [u8; NONCE_LEN],
    total: u32,
    total_len: u64,
}

impl<'a> ChunkedSealer<'a> {
    /// A sealer for a message of `total` chunks and `total_len` bytes.
    /// `base_nonce` must reserve `total` consecutive values (see
    /// `NonceSource::next_nonce_block`).
    pub fn new(
        cipher: &'a AesGcm,
        msg_id: u64,
        base_nonce: [u8; NONCE_LEN],
        total: u32,
        total_len: u64,
    ) -> Self {
        ChunkedSealer {
            cipher,
            msg_id,
            base_nonce,
            total,
            total_len,
        }
    }

    /// Seal chunk `index`: returns `ciphertext ‖ tag`.
    pub fn seal_chunk(&self, index: u32, plaintext: &[u8]) -> Vec<u8> {
        assert!(index < self.total, "chunk index out of range");
        let nonce = derive_chunk_nonce(&self.base_nonce, index);
        let aad = chunk_aad(self.msg_id, index, self.total, self.total_len);
        self.cipher.seal(&nonce, &aad, plaintext)
    }

    /// Seal chunk `index` in place: `buf` holds the plaintext on entry
    /// and the ciphertext on return; the tag is returned separately so
    /// the caller can assemble the frame without an intermediate `Vec`.
    /// Bit-identical to [`Self::seal_chunk`] (which is this plus
    /// copies).
    pub fn seal_chunk_detached(&self, index: u32, buf: &mut [u8]) -> [u8; TAG_LEN] {
        assert!(index < self.total, "chunk index out of range");
        let nonce = derive_chunk_nonce(&self.base_nonce, index);
        let aad = chunk_aad(self.msg_id, index, self.total, self.total_len);
        self.cipher.seal_detached(&nonce, &aad, buf)
    }

    /// Nonce chunk `index` will be sealed under (for frame assembly).
    pub fn chunk_nonce(&self, index: u32) -> [u8; NONCE_LEN] {
        derive_chunk_nonce(&self.base_nonce, index)
    }
}

/// Opens the chunks of one message under a fixed geometry (read from
/// the first frame's header by the transport layer).
pub struct ChunkedOpener<'a> {
    cipher: &'a AesGcm,
    msg_id: u64,
    base_nonce: [u8; NONCE_LEN],
    total: u32,
    total_len: u64,
}

impl<'a> ChunkedOpener<'a> {
    /// An opener for the same geometry the sealer used.
    pub fn new(
        cipher: &'a AesGcm,
        msg_id: u64,
        base_nonce: [u8; NONCE_LEN],
        total: u32,
        total_len: u64,
    ) -> Self {
        ChunkedOpener {
            cipher,
            msg_id,
            base_nonce,
            total,
            total_len,
        }
    }

    /// Open chunk `index`; fails if the record was tampered with or
    /// belongs to a different position/geometry/message.
    pub fn open_chunk(&self, index: u32, ct_and_tag: &[u8]) -> Result<Vec<u8>> {
        let nonce = derive_chunk_nonce(&self.base_nonce, index);
        let aad = chunk_aad(self.msg_id, index, self.total, self.total_len);
        self.cipher.open(&nonce, &aad, ct_and_tag)
    }

    /// Open chunk `index` in place: `buf` holds the ciphertext on
    /// entry and the plaintext on return (untouched on failure).
    /// Bit-identical to [`Self::open_chunk`] minus the copies.
    pub fn open_chunk_detached(
        &self,
        index: u32,
        buf: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<()> {
        let nonce = derive_chunk_nonce(&self.base_nonce, index);
        let aad = chunk_aad(self.msg_id, index, self.total, self.total_len);
        self.cipher.open_detached(&nonce, &aad, buf, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TAG_LEN;

    fn cipher() -> AesGcm {
        AesGcm::new(&[0x42u8; 32]).unwrap()
    }

    fn seal_all(c: &AesGcm, msg: &[u8], chunk_size: usize) -> (u32, Vec<Vec<u8>>) {
        let total = chunk_count(msg.len(), chunk_size);
        let sealer = ChunkedSealer::new(c, 77, [9u8; 12], total, msg.len() as u64);
        let chunks = (0..total)
            .map(|i| sealer.seal_chunk(i, &msg[chunk_range(msg.len(), chunk_size, i)]))
            .collect();
        (total, chunks)
    }

    #[test]
    fn geometry_helpers() {
        assert_eq!(chunk_count(0, 64), 1);
        assert_eq!(chunk_count(64, 64), 1);
        assert_eq!(chunk_count(65, 64), 2);
        assert_eq!(chunk_count(1 << 20, 1 << 16), 16);
        assert_eq!(chunk_range(100, 64, 0), 0..64);
        assert_eq!(chunk_range(100, 64, 1), 64..100);
    }

    #[test]
    fn nonce_derivation_is_an_offset() {
        let base = [0xFFu8; 12];
        let n0 = derive_chunk_nonce(&base, 0);
        let n1 = derive_chunk_nonce(&base, 1);
        assert_eq!(n0, base);
        assert_ne!(n1, base);
        // Tail overflow carries into the 4-byte prefix instead of
        // silently wrapping back onto low-tail nonces.
        assert_eq!(&n1[..4], &0u32.to_be_bytes());
        assert_eq!(&n1[4..], &0u64.to_be_bytes());
        // Distinct indices, distinct nonces.
        let set: std::collections::HashSet<_> =
            (0..1000).map(|i| derive_chunk_nonce(&[3u8; 12], i)).collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn nonce_tail_overflow_never_collides_with_low_tail_draws() {
        // A base whose tail is u64::MAX - 1: indices 0..4 straddle the
        // overflow. A second base with the same prefix and a zero tail
        // (what a later Random draw could produce) must stay disjoint.
        let mut high = [0xABu8; 12];
        high[4..].copy_from_slice(&(u64::MAX - 1).to_be_bytes());
        let mut low = [0xABu8; 12];
        low[4..].copy_from_slice(&0u64.to_be_bytes());
        let from_high: std::collections::HashSet<_> =
            (0..4).map(|i| derive_chunk_nonce(&high, i)).collect();
        let from_low: std::collections::HashSet<_> =
            (0..4).map(|i| derive_chunk_nonce(&low, i)).collect();
        assert_eq!(from_high.len(), 4);
        assert!(from_high.is_disjoint(&from_low));
        // The carried nonces live under the incremented prefix.
        let carried = derive_chunk_nonce(&high, 2);
        let mut want_prefix = [0xABu8; 4];
        want_prefix[3] = 0xAC;
        assert_eq!(&carried[..4], &want_prefix);
        assert_eq!(&carried[4..], &0u64.to_be_bytes());
    }

    #[test]
    fn undo_chunk_nonce_inverts_derivation() {
        // Round-trip across the carry/borrow boundary and for ordinary
        // bases: undo(derive(base, i), i) == base for every i.
        let mut high = [0x5Au8; 12];
        high[4..].copy_from_slice(&(u64::MAX - 1).to_be_bytes());
        for base in [[0u8; 12], [0xFFu8; 12], [9u8; 12], high] {
            for i in [0u32, 1, 2, 3, 1000, u32::MAX] {
                let derived = derive_chunk_nonce(&base, i);
                assert_eq!(undo_chunk_nonce(&derived, i), base, "base {base:?} index {i}");
            }
        }
    }

    #[test]
    fn round_trip_uneven_tail() {
        let c = cipher();
        let msg: Vec<u8> = (0..201u32).map(|i| i as u8).collect(); // 201 % 64 != 0
        let (total, chunks) = seal_all(&c, &msg, 64);
        assert_eq!(total, 4);
        assert_eq!(chunks[3].len(), 9 + TAG_LEN);
        let opener = ChunkedOpener::new(&c, 77, [9u8; 12], total, msg.len() as u64);
        let mut out = Vec::new();
        for (i, ch) in chunks.iter().enumerate() {
            out.extend_from_slice(&opener.open_chunk(i as u32, ch).unwrap());
        }
        assert_eq!(out, msg);
    }

    #[test]
    fn detached_chunk_api_is_bit_identical() {
        let c = cipher();
        let msg: Vec<u8> = (0..201u32).map(|i| (i * 7) as u8).collect();
        let (total, chunks) = seal_all(&c, &msg, 64);
        let sealer = ChunkedSealer::new(&c, 77, [9u8; 12], total, msg.len() as u64);
        let opener = ChunkedOpener::new(&c, 77, [9u8; 12], total, msg.len() as u64);
        for i in 0..total {
            let r = chunk_range(msg.len(), 64, i);
            let mut buf = msg[r].to_vec();
            let tag = sealer.seal_chunk_detached(i, &mut buf);
            let mut wire = buf.clone();
            wire.extend_from_slice(&tag);
            assert_eq!(wire, chunks[i as usize], "chunk {i}");
            // And back, in place.
            opener.open_chunk_detached(i, &mut buf, &tag).unwrap();
            assert_eq!(buf, &msg[chunk_range(msg.len(), 64, i)]);
            // Tampered tag leaves the buffer untouched.
            let mut bad = [0u8; TAG_LEN];
            bad.copy_from_slice(&tag);
            bad[0] ^= 1;
            let snapshot = wire[..wire.len() - TAG_LEN].to_vec();
            let mut ct = snapshot.clone();
            assert!(opener.open_chunk_detached(i, &mut ct, &bad).is_err());
            assert_eq!(ct, snapshot);
        }
    }

    #[test]
    fn wrong_position_geometry_or_message_fails() {
        let c = cipher();
        let msg = vec![7u8; 130];
        let (total, chunks) = seal_all(&c, &msg, 64);
        let opener = ChunkedOpener::new(&c, 77, [9u8; 12], total, msg.len() as u64);
        // Chunk 0 presented as chunk 1: reorder detected.
        assert!(opener.open_chunk(1, &chunks[0]).is_err());
        // Wrong chunk total: truncation/extension detected.
        let bad_total = ChunkedOpener::new(&c, 77, [9u8; 12], total + 1, msg.len() as u64);
        assert!(bad_total.open_chunk(0, &chunks[0]).is_err());
        // Wrong message id: cross-message splice detected.
        let bad_msg = ChunkedOpener::new(&c, 78, [9u8; 12], total, msg.len() as u64);
        assert!(bad_msg.open_chunk(0, &chunks[0]).is_err());
        // Flipped ciphertext bit: plain tamper detected.
        let mut t = chunks[2].clone();
        t[0] ^= 1;
        assert!(opener.open_chunk(2, &t).is_err());
    }
}
