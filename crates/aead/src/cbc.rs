//! Cipher Block Chaining mode — privacy-only, **no integrity**.
//!
//! Used by the legacy "encrypt message + hash checksum" construction
//! that §II of the paper debunks (An–Bellare, EUROCRYPT 2001: encryption
//! with redundancy does not provide authenticity). The encrypted-MPI
//! data path never uses CBC.

use crate::aes::{BlockDecrypt, BlockEncrypt, SoftAes};
use crate::ecb::{pad, unpad};
use crate::error::{Error, Result};

/// CBC cipher with explicit random IV (PKCS#7 padded).
pub struct CbcCipher {
    aes: SoftAes,
}

impl CbcCipher {
    /// Build from a 16- or 32-byte key.
    pub fn new(key: &[u8]) -> Result<Self> {
        Ok(CbcCipher {
            aes: SoftAes::new(key)?,
        })
    }

    /// Encrypt; output is `iv ‖ ciphertext`.
    pub fn encrypt(&self, iv: &[u8; 16], plaintext: &[u8]) -> Vec<u8> {
        let padded = pad(plaintext);
        let mut out = Vec::with_capacity(16 + padded.len());
        out.extend_from_slice(iv);
        let mut prev = *iv;
        for chunk in padded.chunks_exact(16) {
            let mut block = [0u8; 16];
            for i in 0..16 {
                block[i] = chunk[i] ^ prev[i];
            }
            self.aes.encrypt_block(&mut block);
            out.extend_from_slice(&block);
            prev = block;
        }
        out
    }

    /// Decrypt `iv ‖ ciphertext`, stripping padding.
    pub fn decrypt(&self, iv_and_ct: &[u8]) -> Result<Vec<u8>> {
        if iv_and_ct.len() < 32 || !iv_and_ct.len().is_multiple_of(16) {
            return Err(Error::NotBlockAligned {
                got: iv_and_ct.len(),
            });
        }
        let (iv, ct) = iv_and_ct.split_at(16);
        let mut prev: [u8; 16] = iv.try_into().unwrap();
        let mut out = Vec::with_capacity(ct.len());
        for chunk in ct.chunks_exact(16) {
            let mut block: [u8; 16] = chunk.try_into().unwrap();
            self.aes.decrypt_block(&mut block);
            for i in 0..16 {
                block[i] ^= prev[i];
            }
            out.extend_from_slice(&block);
            prev = chunk.try_into().unwrap();
        }
        unpad(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_lengths() {
        let cbc = CbcCipher::new(&[9u8; 32]).unwrap();
        let iv = [0x11u8; 16];
        for len in [0usize, 1, 16, 31, 32, 255] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let ct = cbc.encrypt(&iv, &pt);
            assert_eq!(cbc.decrypt(&ct).unwrap(), pt);
        }
    }

    #[test]
    fn iv_randomization_hides_equality() {
        // Unlike ECB, the same plaintext under different IVs differs.
        let cbc = CbcCipher::new(&[9u8; 16]).unwrap();
        let a = cbc.encrypt(&[1u8; 16], b"same message!!");
        let b = cbc.encrypt(&[2u8; 16], b"same message!!");
        assert_ne!(&a[16..], &b[16..]);
    }

    #[test]
    fn bit_flip_in_iv_flips_first_plaintext_block() {
        // The classic CBC malleability: flipping IV bit i flips plaintext
        // bit i of block 0 — decryption succeeds, data silently changed.
        let cbc = CbcCipher::new(&[9u8; 16]).unwrap();
        let pt = b"exact sixteen by"; // 16 bytes -> 1 data block + pad block
        let mut ct = cbc.encrypt(&[0u8; 16], pt);
        ct[0] ^= 0x80;
        let out = cbc.decrypt(&ct).unwrap();
        assert_eq!(out[0], pt[0] ^ 0x80, "silent controlled corruption");
        assert_eq!(&out[1..], &pt[1..]);
    }
}
