//! Constant-time comparison helpers.
//!
//! Tag verification must not leak, via timing, how many prefix bytes of a
//! forged tag were correct — otherwise an attacker can forge tags byte by
//! byte. These helpers accumulate the difference across the whole input
//! before producing a single boolean.

/// Constant-time equality of two equal-length byte slices.
///
/// Returns `false` (fast path, no secret involved) if the lengths differ.
#[inline]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Map 0 -> true without a data-dependent branch on `diff`'s bits.
    ct_is_zero(diff)
}

/// Constant-time "is this byte zero".
#[inline]
pub fn ct_is_zero(x: u8) -> bool {
    // (x | -x) has its top bit set iff x != 0.
    let nonzero = ((x as i8 | (x as i8).wrapping_neg()) as u8) >> 7;
    nonzero == 0
}

/// Constant-time conditional select: returns `a` if `choice` is 1,
/// `b` if 0. `choice` must be 0 or 1.
#[inline]
pub fn ct_select(choice: u8, a: u8, b: u8) -> u8 {
    debug_assert!(choice <= 1);
    let mask = choice.wrapping_neg(); // 0x00 or 0xFF
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(ct_eq(b"", b""));
        assert!(ct_eq(b"abc", b"abc"));
        assert!(!ct_eq(b"abc", b"abd"));
        assert!(!ct_eq(b"abc", b"ab"));
        assert!(!ct_eq(b"\x00", b"\x80"));
    }

    #[test]
    fn is_zero_all_bytes() {
        assert!(ct_is_zero(0));
        for x in 1..=255u8 {
            assert!(!ct_is_zero(x), "x={x}");
        }
    }

    #[test]
    fn select_both_ways() {
        assert_eq!(ct_select(1, 0xAA, 0x55), 0xAA);
        assert_eq!(ct_select(0, 0xAA, 0x55), 0x55);
    }
}
