//! Nonce generation policies.
//!
//! AES-GCM nonces must never repeat under one key. The paper samples a
//! fresh uniformly random 12-byte nonce per message (`RAND_bytes(12)` in
//! Algorithm 1); a deterministic per-sender counter is the cheaper,
//! collision-free alternative we provide as an ablation.

use rand::RngCore;

use crate::NONCE_LEN;

/// How fresh nonces are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoncePolicy {
    /// Uniformly random 12 bytes per message (the paper's choice).
    Random,
    /// `sender_id (4 bytes) ‖ counter (8 bytes)`; collision-free as long
    /// as sender ids are unique under the key.
    Counter {
        /// Unique id of this sender under the shared key.
        sender_id: u32,
    },
}

/// Stateful nonce source implementing a [`NoncePolicy`].
pub struct NonceSource {
    policy: NoncePolicy,
    counter: u64,
    rng: rand::rngs::ThreadRng,
}

impl NonceSource {
    /// Create a source for the given policy.
    pub fn new(policy: NoncePolicy) -> Self {
        NonceSource {
            policy,
            counter: 0,
            rng: rand::thread_rng(),
        }
    }

    /// Produce the next nonce.
    pub fn next_nonce(&mut self) -> [u8; NONCE_LEN] {
        let mut n = [0u8; NONCE_LEN];
        match self.policy {
            NoncePolicy::Random => self.rng.fill_bytes(&mut n),
            NoncePolicy::Counter { sender_id } => {
                n[..4].copy_from_slice(&sender_id.to_be_bytes());
                n[4..].copy_from_slice(&self.counter.to_be_bytes());
                self.counter = self
                    .counter
                    .checked_add(1)
                    .expect("nonce counter exhausted (2^64 messages)");
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counter_nonces_are_unique_and_ordered() {
        let mut src = NonceSource::new(NoncePolicy::Counter { sender_id: 42 });
        let mut seen = HashSet::new();
        for i in 0..1000u64 {
            let n = src.next_nonce();
            assert_eq!(&n[..4], &42u32.to_be_bytes());
            assert_eq!(&n[4..], &i.to_be_bytes());
            assert!(seen.insert(n));
        }
    }

    #[test]
    fn distinct_senders_never_collide() {
        let mut a = NonceSource::new(NoncePolicy::Counter { sender_id: 1 });
        let mut b = NonceSource::new(NoncePolicy::Counter { sender_id: 2 });
        for _ in 0..100 {
            assert_ne!(a.next_nonce(), b.next_nonce());
        }
    }

    #[test]
    fn random_nonces_distinct_in_practice() {
        let mut src = NonceSource::new(NoncePolicy::Random);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(src.next_nonce()), "random 96-bit collision");
        }
    }
}
