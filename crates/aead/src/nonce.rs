//! Nonce generation policies.
//!
//! AES-GCM nonces must never repeat under one key. The paper samples a
//! fresh uniformly random 12-byte nonce per message (`RAND_bytes(12)` in
//! Algorithm 1); a deterministic per-sender counter is the cheaper,
//! collision-free alternative we provide as an ablation; a seeded PRNG
//! gives random-*looking* but reproducible byte streams for wire-level
//! tests (never for production).

use rand::rngs::{StdRng, ThreadRng};
use rand::{RngCore, SeedableRng};

use crate::NONCE_LEN;

/// How fresh nonces are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NoncePolicy {
    /// Uniformly random 12 bytes per message (the paper's choice).
    Random,
    /// `sender_id (4 bytes) ‖ counter (8 bytes)`; collision-free as long
    /// as sender ids are unique under the key.
    Counter {
        /// Unique id of this sender under the shared key.
        sender_id: u32,
    },
    /// Deterministic test mode: nonces drawn from a seeded PRNG, so two
    /// sources with the same seed emit identical sequences and traced
    /// wire bytes are reproducible run-to-run. Distributionally
    /// identical to [`NoncePolicy::Random`] but NOT suitable for
    /// production (a known seed makes every nonce predictable).
    Seeded {
        /// PRNG seed shared by all sources that must agree.
        seed: u64,
    },
}

/// Stateful nonce source implementing a [`NoncePolicy`].
pub struct NonceSource {
    policy: NoncePolicy,
    counter: u64,
    rng: ThreadRng,
    seeded: Option<StdRng>,
}

impl NonceSource {
    /// Create a source for the given policy.
    pub fn new(policy: NoncePolicy) -> Self {
        NonceSource {
            policy,
            counter: 0,
            rng: rand::thread_rng(),
            seeded: match policy {
                NoncePolicy::Seeded { seed } => Some(StdRng::seed_from_u64(seed)),
                _ => None,
            },
        }
    }

    /// Produce the next nonce.
    pub fn next_nonce(&mut self) -> [u8; NONCE_LEN] {
        self.next_nonce_block(1)
    }

    /// Produce a *base* nonce that reserves `span` consecutive values:
    /// the caller may derive per-chunk nonces `base + i` for `i < span`
    /// (see `chunked::derive_chunk_nonce`) without colliding with any
    /// nonce this source hands out later. For the random policies a
    /// single draw suffices: the derivation treats the full 96-bit
    /// nonce as one big-endian counter (tail overflow carries into the
    /// 4-byte prefix rather than wrapping), so a base drawn near the
    /// top of the 64-bit tail still reserves `span` distinct values.
    /// The counter policy advances by `span` and refuses to wrap.
    pub fn next_nonce_block(&mut self, span: u32) -> [u8; NONCE_LEN] {
        assert!(span >= 1, "nonce block must reserve at least one value");
        let mut n = [0u8; NONCE_LEN];
        match self.policy {
            NoncePolicy::Random => self.rng.fill_bytes(&mut n),
            NoncePolicy::Seeded { .. } => {
                self.seeded.as_mut().expect("seeded rng").fill_bytes(&mut n)
            }
            NoncePolicy::Counter { sender_id } => {
                n[..4].copy_from_slice(&sender_id.to_be_bytes());
                n[4..].copy_from_slice(&self.counter.to_be_bytes());
                self.counter = self
                    .counter
                    .checked_add(span as u64)
                    .expect("nonce counter exhausted (2^64 messages)");
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counter_nonces_are_unique_and_ordered() {
        let mut src = NonceSource::new(NoncePolicy::Counter { sender_id: 42 });
        let mut seen = HashSet::new();
        for i in 0..1000u64 {
            let n = src.next_nonce();
            assert_eq!(&n[..4], &42u32.to_be_bytes());
            assert_eq!(&n[4..], &i.to_be_bytes());
            assert!(seen.insert(n));
        }
    }

    #[test]
    fn distinct_senders_never_collide() {
        let mut a = NonceSource::new(NoncePolicy::Counter { sender_id: 1 });
        let mut b = NonceSource::new(NoncePolicy::Counter { sender_id: 2 });
        for _ in 0..100 {
            assert_ne!(a.next_nonce(), b.next_nonce());
        }
    }

    #[test]
    fn random_nonces_distinct_in_practice() {
        let mut src = NonceSource::new(NoncePolicy::Random);
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(src.next_nonce()), "random 96-bit collision");
        }
    }

    #[test]
    fn seeded_sources_reproduce_and_diverge_by_seed() {
        let mut a = NonceSource::new(NoncePolicy::Seeded { seed: 7 });
        let mut b = NonceSource::new(NoncePolicy::Seeded { seed: 7 });
        let mut c = NonceSource::new(NoncePolicy::Seeded { seed: 8 });
        let seq_a: Vec<_> = (0..50).map(|_| a.next_nonce()).collect();
        let seq_b: Vec<_> = (0..50).map(|_| b.next_nonce()).collect();
        assert_eq!(seq_a, seq_b, "same seed must replay the same nonces");
        assert!(
            (0..50).any(|i| seq_a[i] != c.next_nonce()),
            "different seeds must diverge"
        );
        // Still distinct within one stream.
        let set: HashSet<_> = seq_a.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn counter_blocks_reserve_span() {
        let mut src = NonceSource::new(NoncePolicy::Counter { sender_id: 9 });
        let base = src.next_nonce_block(16);
        assert_eq!(&base[4..], &0u64.to_be_bytes());
        // The next draw starts after the reserved span.
        let next = src.next_nonce();
        assert_eq!(&next[4..], &16u64.to_be_bytes());
    }
}
