//! "Big key" one-time pad — a faithful model of VAN-MPICH2's broken
//! encryption (§II of the paper), provided **only** to demonstrate the
//! two-time-pad attack.
//!
//! VAN-MPICH2 implements one-time pads as substrings of one large key
//! `K`. When many large messages are encrypted, two messages' pads end
//! up overlapping, and the XOR of the overlapping plaintext regions
//! leaks. `examples/two_time_pad_attack.rs` exploits exactly this.

use crate::error::{Error, Result};

/// A deliberately flawed pad allocator over one shared big key.
///
/// `Strict` mode refuses to reuse key material (a true, impractical OTP);
/// `Wrapping` mode mimics VAN-MPICH2 and wraps around, creating overlaps.
pub struct InsecureBigKeyPad {
    key: Vec<u8>,
    cursor: usize,
    mode: PadMode,
}

/// Pad allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PadMode {
    /// Error out when the key is exhausted (secure but unusable).
    Strict,
    /// Wrap to the start of the key — the VAN-MPICH2 flaw.
    Wrapping,
}

impl InsecureBigKeyPad {
    /// Create a pad allocator over `key`.
    pub fn new(key: Vec<u8>, mode: PadMode) -> Self {
        assert!(!key.is_empty(), "pad key must be non-empty");
        InsecureBigKeyPad {
            key,
            cursor: 0,
            mode,
        }
    }

    /// Offset the next encryption will use (for demonstrating overlap).
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Encrypt (XOR with the next pad substring). Returns
    /// `(start_offset, ciphertext)`.
    pub fn encrypt(&mut self, plaintext: &[u8]) -> Result<(usize, Vec<u8>)> {
        let start = self.cursor;
        if self.mode == PadMode::Strict && start + plaintext.len() > self.key.len() {
            return Err(Error::PadExhausted);
        }
        let ct: Vec<u8> = plaintext
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ self.key[(start + i) % self.key.len()])
            .collect();
        self.cursor = match self.mode {
            // Strict mode must remember true consumption so a full key
            // cannot be silently reused from offset 0.
            PadMode::Strict => start + plaintext.len(),
            PadMode::Wrapping => (start + plaintext.len()) % self.key.len(),
        };
        Ok((start, ct))
    }

    /// Decrypt given the pad start offset.
    pub fn decrypt(&self, start: usize, ciphertext: &[u8]) -> Vec<u8> {
        ciphertext
            .iter()
            .enumerate()
            .map(|(i, &b)| b ^ self.key[(start + i) % self.key.len()])
            .collect()
    }
}

/// Given two ciphertexts whose pads overlap on a known region, recover
/// the XOR of the two plaintexts on that region — step one of the
/// two-time-pad attack (Mason et al., CCS 2006 finish the job with a
/// language model; for structured data the XOR alone is devastating).
pub fn xor_of_overlap(ct_a: &[u8], ct_b: &[u8], overlap: usize) -> Vec<u8> {
    assert!(overlap <= ct_a.len() && overlap <= ct_b.len());
    let a_tail = &ct_a[ct_a.len() - overlap..];
    let b_head = &ct_b[..overlap];
    a_tail.iter().zip(b_head.iter()).map(|(x, y)| x ^ y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let key: Vec<u8> = (0..=255).cycle().take(1024).collect();
        let mut pad = InsecureBigKeyPad::new(key, PadMode::Strict);
        let (start, ct) = pad.encrypt(b"hello world").unwrap();
        assert_eq!(pad.decrypt(start, &ct), b"hello world");
    }

    #[test]
    fn strict_mode_exhausts() {
        let mut pad = InsecureBigKeyPad::new(vec![7u8; 8], PadMode::Strict);
        assert!(pad.encrypt(b"12345678").is_ok());
        assert_eq!(pad.encrypt(b"x"), Err(Error::PadExhausted));
    }

    #[test]
    fn wrapping_mode_creates_recoverable_overlap() {
        // Key of 100 bytes; two 80-byte messages must overlap by 60.
        let key: Vec<u8> = (0..100u8).map(|i| i.wrapping_mul(37)).collect();
        let mut pad = InsecureBigKeyPad::new(key, PadMode::Wrapping);
        let m1: Vec<u8> = (0..80).map(|i| b'a' + (i % 26) as u8).collect();
        let m2: Vec<u8> = (0..80).map(|i| b'A' + (i % 26) as u8).collect();
        let (_s1, c1) = pad.encrypt(&m1).unwrap();
        let (s2, c2) = pad.encrypt(&m2).unwrap();
        assert_eq!(s2, 80);
        // Pads overlap on key[80..100] ∪ wrap — the last 20 bytes of m1's
        // pad region [60..80)? m1 used key[0..80), m2 uses key[80..100)
        // then wraps to key[0..60). So m2's bytes 20..80 reuse key[0..60),
        // which encrypted m1's bytes 0..60.
        let xor: Vec<u8> = c2[20..80]
            .iter()
            .zip(c1[0..60].iter())
            .map(|(x, y)| x ^ y)
            .collect();
        let expect: Vec<u8> = m2[20..80]
            .iter()
            .zip(m1[0..60].iter())
            .map(|(x, y)| x ^ y)
            .collect();
        assert_eq!(xor, expect, "plaintext XOR leaks from pad reuse");
    }
}
