//! AES-GCM authenticated encryption (NIST SP 800-38D).
//!
//! The mode is generic over a block-cipher engine and a GHASH engine so
//! the four library profiles of the paper can mix and match:
//!
//! | profile | AES engine | GHASH engine |
//! |---|---|---|
//! | OpenSSL / BoringSSL | 8-block AES-NI pipeline | PCLMUL, 4-block aggregated |
//! | Libsodium | single-block AES-NI | PCLMUL |
//! | CryptoPP (gcc build) | software T-tables | Shoup 4-bit tables |
//!
//! Only 96-bit nonces are supported (the only length the paper — and
//! every sane protocol — uses); each ciphertext carries a 128-bit tag.

use crate::aes::{inc32, BlockEncrypt, SoftAes};
use crate::ct::ct_eq;
use crate::error::{Error, Result};
use crate::ghash::{GhashImpl, GhashSoft};
use crate::{NONCE_LEN, TAG_LEN};
use empi_trace::engine_counters as counters;

#[cfg(target_arch = "x86_64")]
use crate::aes::{AesNi, AesNiPipelined};
#[cfg(target_arch = "x86_64")]
use crate::ghash::GhashClmul;

/// Which AES engine to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AesEngineKind {
    /// Portable T-table software AES.
    Soft,
    /// AES-NI, one block at a time.
    Ni,
    /// AES-NI, eight interleaved blocks.
    NiPipelined,
}

/// Which GHASH engine to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GhashEngineKind {
    /// Shoup 4-bit tables.
    Soft,
    /// PCLMULQDQ with 4-block aggregation.
    Clmul,
}

enum AesEngine {
    Soft(SoftAes),
    #[cfg(target_arch = "x86_64")]
    Ni(AesNi),
    #[cfg(target_arch = "x86_64")]
    NiPipelined(AesNiPipelined),
}

impl AesEngine {
    #[inline]
    fn encrypt_block(&self, block: &mut [u8; 16]) {
        match self {
            AesEngine::Soft(a) => {
                counters::add_aes_blocks_soft(1);
                a.encrypt_block(block)
            }
            #[cfg(target_arch = "x86_64")]
            AesEngine::Ni(a) => {
                counters::add_aes_blocks_ni(1);
                a.encrypt_block(block)
            }
            #[cfg(target_arch = "x86_64")]
            AesEngine::NiPipelined(a) => {
                counters::add_aes_blocks_pipelined(1);
                a.encrypt_block(block)
            }
        }
    }

    #[inline]
    fn ctr_apply(&self, ctr: &[u8; 16], buf: &mut [u8]) {
        let blocks = buf.len().div_ceil(16) as u64;
        match self {
            AesEngine::Soft(a) => {
                counters::add_aes_blocks_soft(blocks);
                a.ctr_apply(ctr, buf)
            }
            #[cfg(target_arch = "x86_64")]
            AesEngine::Ni(a) => {
                counters::add_aes_blocks_ni(blocks);
                a.ctr_apply(ctr, buf)
            }
            #[cfg(target_arch = "x86_64")]
            AesEngine::NiPipelined(a) => {
                counters::add_aes_blocks_pipelined(blocks);
                a.ctr_apply(ctr, buf)
            }
        }
    }
}

enum GhashEngine {
    Soft(GhashSoft),
    #[cfg(target_arch = "x86_64")]
    Clmul(GhashClmul),
}

impl GhashEngine {
    #[inline]
    fn ghash(&self, aad: &[u8], data: &[u8]) -> [u8; 16] {
        // aad blocks + data blocks + the final length block.
        let blocks = (aad.len().div_ceil(16) + data.len().div_ceil(16) + 1) as u64;
        match self {
            GhashEngine::Soft(g) => {
                counters::add_ghash_blocks_soft(blocks);
                g.ghash(aad, data)
            }
            #[cfg(target_arch = "x86_64")]
            GhashEngine::Clmul(g) => {
                counters::add_ghash_blocks_clmul(blocks);
                g.ghash(aad, data)
            }
        }
    }
}

/// An AES-GCM cipher bound to one key and one engine combination.
///
/// The `Debug` impl deliberately prints no key material.
pub struct AesGcm {
    aes: AesEngine,
    ghash: GhashEngine,
    key_bits: usize,
}

impl std::fmt::Debug for AesGcm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AesGcm")
            .field("key_bits", &self.key_bits)
            .finish_non_exhaustive()
    }
}

impl AesGcm {
    /// Build with the fastest engines the CPU supports.
    pub fn new(key: &[u8]) -> Result<Self> {
        if crate::aes::hardware_acceleration_available() {
            Self::with_engines(AesEngineKind::NiPipelined, GhashEngineKind::Clmul, key)
        } else {
            counters::add_hw_fallback(1);
            Self::with_engines(AesEngineKind::Soft, GhashEngineKind::Soft, key)
        }
    }

    /// Build with an explicit engine combination.
    ///
    /// Returns [`Error::HardwareUnavailable`] if a hardware engine is
    /// requested on a CPU without AES-NI/PCLMULQDQ.
    pub fn with_engines(
        aes_kind: AesEngineKind,
        ghash_kind: GhashEngineKind,
        key: &[u8],
    ) -> Result<Self> {
        let aes = match aes_kind {
            AesEngineKind::Soft => AesEngine::Soft(SoftAes::new(key)?),
            #[cfg(target_arch = "x86_64")]
            AesEngineKind::Ni => AesEngine::Ni(AesNi::new(key)?),
            #[cfg(target_arch = "x86_64")]
            AesEngineKind::NiPipelined => AesEngine::NiPipelined(AesNiPipelined::new(key)?),
            #[cfg(not(target_arch = "x86_64"))]
            _ => return Err(Error::HardwareUnavailable),
        };
        // H = E(K, 0^128).
        let mut h_block = [0u8; 16];
        aes.encrypt_block(&mut h_block);
        let h = u128::from_be_bytes(h_block);
        let ghash = match ghash_kind {
            GhashEngineKind::Soft => GhashEngine::Soft(GhashSoft::new(h)),
            #[cfg(target_arch = "x86_64")]
            GhashEngineKind::Clmul => {
                if !crate::aes::hardware_acceleration_available() {
                    return Err(Error::HardwareUnavailable);
                }
                GhashEngine::Clmul(GhashClmul::new(h))
            }
            #[cfg(not(target_arch = "x86_64"))]
            GhashEngineKind::Clmul => return Err(Error::HardwareUnavailable),
        };
        Ok(AesGcm {
            aes,
            ghash,
            key_bits: key.len() * 8,
        })
    }

    /// Key size in bits (128 or 256).
    pub fn key_bits(&self) -> usize {
        self.key_bits
    }

    #[inline]
    fn counter_blocks(nonce: &[u8; NONCE_LEN]) -> ([u8; 16], [u8; 16]) {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        let mut ctr1 = j0;
        inc32(&mut ctr1);
        (j0, ctr1)
    }

    #[inline]
    fn tag(&self, j0: &[u8; 16], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let s = self.ghash.ghash(aad, ct);
        let mut ek_j0 = *j0;
        self.aes.encrypt_block(&mut ek_j0);
        let mut tag = [0u8; 16];
        for i in 0..16 {
            tag[i] = s[i] ^ ek_j0[i];
        }
        tag
    }

    /// Encrypt `buf` in place and return the authentication tag.
    pub fn seal_detached(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], buf: &mut [u8]) -> [u8; 16] {
        let (j0, ctr1) = Self::counter_blocks(nonce);
        self.aes.ctr_apply(&ctr1, buf);
        self.tag(&j0, aad, buf)
    }

    /// Verify `tag` over the ciphertext in `buf`, then decrypt in place.
    ///
    /// On failure the buffer is left untouched (still ciphertext) and
    /// [`Error::AuthFailure`] is returned.
    pub fn open_detached(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        buf: &mut [u8],
        tag: &[u8; TAG_LEN],
    ) -> Result<()> {
        let (j0, ctr1) = Self::counter_blocks(nonce);
        let expect = self.tag(&j0, aad, buf);
        if !ct_eq(&expect, tag) {
            return Err(Error::AuthFailure);
        }
        self.aes.ctr_apply(&ctr1, buf);
        Ok(())
    }

    /// Encrypt `plaintext`, returning `ciphertext ‖ tag`.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        out.extend_from_slice(plaintext);
        let tag = self.seal_detached(nonce, aad, &mut out);
        out.extend_from_slice(&tag);
        out
    }

    /// Decrypt `ciphertext ‖ tag`, returning the plaintext.
    pub fn open(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], ct_and_tag: &[u8]) -> Result<Vec<u8>> {
        if ct_and_tag.len() < TAG_LEN {
            return Err(Error::CiphertextTooShort {
                got: ct_and_tag.len(),
            });
        }
        let split = ct_and_tag.len() - TAG_LEN;
        let mut buf = ct_and_tag[..split].to_vec();
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&ct_and_tag[split..]);
        self.open_detached(nonce, aad, &mut buf, &tag)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn engine_combos() -> Vec<(AesEngineKind, GhashEngineKind)> {
        let mut v = vec![(AesEngineKind::Soft, GhashEngineKind::Soft)];
        if crate::aes::hardware_acceleration_available() {
            v.push((AesEngineKind::Ni, GhashEngineKind::Clmul));
            v.push((AesEngineKind::NiPipelined, GhashEngineKind::Clmul));
            v.push((AesEngineKind::NiPipelined, GhashEngineKind::Soft));
            v.push((AesEngineKind::Soft, GhashEngineKind::Clmul));
        }
        v
    }

    struct Kat {
        key: &'static str,
        iv: &'static str,
        pt: &'static str,
        aad: &'static str,
        ct: &'static str,
        tag: &'static str,
    }

    /// McGrew–Viega GCM spec test cases 1–4 (AES-128) and 14/16-style
    /// AES-256 cases.
    const KATS: &[Kat] = &[
        Kat {
            key: "00000000000000000000000000000000",
            iv: "000000000000000000000000",
            pt: "",
            aad: "",
            ct: "",
            tag: "58e2fccefa7e3061367f1d57a4e7455a",
        },
        Kat {
            key: "00000000000000000000000000000000",
            iv: "000000000000000000000000",
            pt: "00000000000000000000000000000000",
            aad: "",
            ct: "0388dace60b6a392f328c2b971b2fe78",
            tag: "ab6e47d42cec13bdf53a67b21257bddf",
        },
        Kat {
            key: "feffe9928665731c6d6a8f9467308308",
            iv: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            aad: "",
            ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985",
            tag: "4d5c2af327cd64a62cf35abd2ba6fab4",
        },
        Kat {
            key: "feffe9928665731c6d6a8f9467308308",
            iv: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
            aad: "feedfacedeadbeeffeedfacedeadbeefabaddad2",
            ct: "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e\
                 21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091",
            tag: "5bc94fbc3221a5db94fae95ae7121a47",
        },
        Kat {
            key: "feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308",
            iv: "cafebabefacedbaddecaf888",
            pt: "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
                 1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
            aad: "",
            ct: "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
                 8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad",
            tag: "b094dac5d93471bdec1a502270e3cc6c",
        },
    ];

    #[test]
    fn nist_vectors_all_engines() {
        for (ai, gi) in engine_combos() {
            for (i, kat) in KATS.iter().enumerate() {
                let cipher =
                    AesGcm::with_engines(ai, gi, &hex(kat.key)).unwrap();
                let mut nonce = [0u8; 12];
                nonce.copy_from_slice(&hex(kat.iv));
                let pt = hex(&kat.pt.replace(char::is_whitespace, ""));
                let aad = hex(kat.aad);
                let out = cipher.seal(&nonce, &aad, &pt);
                let expect_ct = hex(&kat.ct.replace(char::is_whitespace, ""));
                let expect_tag = hex(kat.tag);
                assert_eq!(&out[..pt.len()], &expect_ct[..], "KAT {i} ct ({ai:?},{gi:?})");
                assert_eq!(&out[pt.len()..], &expect_tag[..], "KAT {i} tag ({ai:?},{gi:?})");
                let back = cipher.open(&nonce, &aad, &out).unwrap();
                assert_eq!(back, pt, "KAT {i} roundtrip");
            }
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn engine_counters_track_soft_blocks() {
        use empi_trace::engine_counters as counters;
        let before = counters::snapshot();
        let cipher =
            AesGcm::with_engines(AesEngineKind::Soft, GhashEngineKind::Soft, &[7u8; 16]).unwrap();
        let nonce = [1u8; 12];
        let msg = vec![0u8; 64];
        let _wire = cipher.seal(&nonce, b"", &msg);
        let d = counters::snapshot().since(&before);
        // Key setup computes H (1 block); sealing runs 4 CTR blocks plus
        // E(J0), and GHASH folds 4 data blocks plus the length block.
        // Other tests may add more concurrently, so these are floors.
        assert!(d.aes_blocks_soft >= 6, "aes soft blocks: {}", d.aes_blocks_soft);
        assert!(d.ghash_blocks_soft >= 5, "ghash soft blocks: {}", d.ghash_blocks_soft);
    }

    #[test]
    fn tamper_detection_everywhere() {
        let cipher = AesGcm::new(&[0x11u8; 32]).unwrap();
        let nonce = [9u8; 12];
        let aad = b"header";
        let out = cipher.seal(&nonce, aad, b"the quick brown fox jumps");
        // Flip each byte of the ciphertext+tag in turn.
        for i in 0..out.len() {
            let mut bad = out.clone();
            bad[i] ^= 0x01;
            assert_eq!(
                cipher.open(&nonce, aad, &bad),
                Err(Error::AuthFailure),
                "byte {i}"
            );
        }
        // Wrong AAD.
        assert_eq!(cipher.open(&nonce, b"headeR", &out), Err(Error::AuthFailure));
        // Wrong nonce.
        let nonce2 = [8u8; 12];
        assert_eq!(cipher.open(&nonce2, aad, &out), Err(Error::AuthFailure));
    }

    #[test]
    fn open_detached_leaves_buffer_on_failure() {
        let cipher = AesGcm::new(&[3u8; 16]).unwrap();
        let nonce = [1u8; 12];
        let mut buf = *b"sixteen byte msg";
        let _good = cipher.seal_detached(&nonce, b"", &mut buf);
        let snapshot = buf;
        let bad_tag = [0u8; 16];
        assert!(cipher.open_detached(&nonce, b"", &mut buf, &bad_tag).is_err());
        assert_eq!(buf, snapshot, "failed open must not decrypt");
    }

    #[test]
    fn short_ciphertext_rejected() {
        let cipher = AesGcm::new(&[3u8; 16]).unwrap();
        let nonce = [1u8; 12];
        assert!(matches!(
            cipher.open(&nonce, b"", &[0u8; 15]),
            Err(Error::CiphertextTooShort { got: 15 })
        ));
    }

    #[test]
    fn cross_engine_interop() {
        // A ciphertext produced by one engine combo must decrypt under
        // every other combo — they all implement the same AES-GCM.
        let key = [0x5au8; 32];
        let nonce = [0x42u8; 12];
        let msg: Vec<u8> = (0..777).map(|i| (i % 251) as u8).collect();
        let combos = engine_combos();
        let reference = AesGcm::with_engines(combos[0].0, combos[0].1, &key)
            .unwrap()
            .seal(&nonce, b"aad", &msg);
        for (ai, gi) in combos {
            let c = AesGcm::with_engines(ai, gi, &key).unwrap();
            assert_eq!(c.seal(&nonce, b"aad", &msg), reference, "({ai:?},{gi:?})");
            assert_eq!(c.open(&nonce, b"aad", &reference).unwrap(), msg);
        }
    }
}
