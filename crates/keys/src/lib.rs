//! # empi-keys — in-band key lifecycle for encrypted MPI
//!
//! The paper hardcodes one cluster-wide key and explicitly defers key
//! distribution to future work; the vulnerability study it cites
//! (arXiv:2107.04940) shows most crypto-library CVEs are key/nonce
//! *management* bugs, not primitive breaks. This crate is the
//! management plane the paper skipped, built deterministic and in
//! virtual time so every run replays bit-exact:
//!
//! * [`suite`] — the scuttlebutt-style primitive kit: a fixed-key AES
//!   correlation-robust hash, an AES-CTR deterministic RNG, and a
//!   commit/reveal coin-toss.
//! * [`handshake`] — a seeded group key agreement run at `World`
//!   startup over the ctrl-plane tag channel: every rank commits to a
//!   seeded contribution, reveals, verifies all commitments, and folds
//!   the contributions with the bootstrap key into a fresh *session
//!   master*. The hardcoded cluster key is demoted to a bootstrap KEK
//!   that only ever protects handshake frames.
//! * [`kdf`] — the one canonical key-derivation path (moved here from
//!   `empi_core::key`, which now re-exports it): pair subkeys, epoch
//!   qualification, the per-epoch *group* key, and the memoizing
//!   [`kdf::KeyCache`].
//! * [`epoch`]/[`plane`] — epoch rotation on a virtual-time
//!   [`empi_netsim::Schedule`] (no wire synchronization: each rank
//!   derives the epoch from its own clock, and a drain window absorbs
//!   the skew), plus revocation that re-keys the surviving group.
//! * [`record`] — the epoch-qualified wire format: plain records grow
//!   an authenticated 8-byte epoch prefix; chunked messages carry the
//!   epoch in the (AAD-bound) top bits of their message id. Epoch
//!   splices, stale replays, and downgrades to the prefix-free legacy
//!   format all fail authentication or surface a typed [`KeyError`].

pub mod epoch;
pub mod frames;
pub mod handshake;
pub mod kdf;
pub mod plane;
pub mod record;
pub mod suite;

pub use epoch::EpochWindow;
pub use frames::KeyFrame;
pub use kdf::{
    derive_group_key, derive_key_table, derive_pair_key, derive_pair_key_epoch, KeyCache,
};
pub use plane::{KeyError, KeyPlane, KeyPlaneConfig, KeyStats};
pub use record::{
    embed_epoch_msg_id, epoch_aad, msg_id_epoch, open_record, seal_record, split_epoch,
    widen_epoch16, EPOCH_MSG_ID_SHIFT, EPOCH_PREFIX_LEN,
};
