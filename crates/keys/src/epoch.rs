//! The epoch drain window.
//!
//! Rotation is clock-derived locally on each rank — there is no wire
//! synchronization round. The cost of that choice is skew: a chunked
//! message sealed just before a boundary can arrive just after it, and
//! a pipelined in-flight window can legitimately straddle a roll. The
//! [`EpochWindow`] is the receive-side policy that absorbs exactly that
//! skew and nothing more: a wire epoch within `drain` of the local
//! epoch (either side) opens under its own epoch's key; anything
//! staler is a replay, anything further ahead is forged or the peer's
//! clock is broken. Both rejections are typed, not silent.

use crate::plane::KeyError;

/// Accept-window policy for incoming wire epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochWindow {
    drain: u64,
}

impl EpochWindow {
    /// A window accepting wire epochs in
    /// `[local − drain, local + drain]` (saturating at 0).
    pub fn new(drain: u64) -> EpochWindow {
        EpochWindow { drain }
    }

    /// The window half-width in epochs.
    pub fn drain(&self) -> u64 {
        self.drain
    }

    /// Check a record's wire epoch against the local epoch. Saturating
    /// arithmetic: a forged `u64::MAX` prefix must reject, not overflow.
    pub fn accept(&self, wire: u64, local: u64) -> Result<(), KeyError> {
        if wire.saturating_add(self.drain) < local {
            Err(KeyError::StaleEpoch {
                wire,
                local,
                drain: self.drain,
            })
        } else if wire > local.saturating_add(self.drain) {
            Err(KeyError::FutureEpoch { wire, local })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_accepts_within_drain() {
        let w = EpochWindow::new(1);
        assert_eq!(w.accept(5, 5), Ok(()));
        assert_eq!(w.accept(4, 5), Ok(()), "one behind drains");
        assert_eq!(w.accept(6, 5), Ok(()), "one ahead absorbs skew");
    }

    #[test]
    fn window_rejects_stale_and_future() {
        let w = EpochWindow::new(1);
        assert_eq!(
            w.accept(3, 5),
            Err(KeyError::StaleEpoch {
                wire: 3,
                local: 5,
                drain: 1
            })
        );
        assert_eq!(
            w.accept(7, 5),
            Err(KeyError::FutureEpoch { wire: 7, local: 5 })
        );
    }

    #[test]
    fn zero_drain_is_exact_match() {
        let w = EpochWindow::new(0);
        assert_eq!(w.accept(2, 2), Ok(()));
        assert!(w.accept(1, 2).is_err());
        assert!(w.accept(3, 2).is_err());
        // No underflow near zero, no overflow at the top.
        assert_eq!(w.accept(0, 0), Ok(()));
        assert!(EpochWindow::new(2).accept(0, 1).is_ok());
        assert!(matches!(
            EpochWindow::new(2).accept(u64::MAX, 1),
            Err(KeyError::FutureEpoch { .. })
        ));
        assert!(matches!(
            EpochWindow::new(2).accept(1, u64::MAX),
            Err(KeyError::StaleEpoch { .. })
        ));
    }
}
