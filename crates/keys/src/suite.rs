//! The scuttlebutt-style primitive kit: fixed-key AES hash, AES-CTR
//! deterministic RNG, and a commit/reveal coin-toss.
//!
//! These are the building blocks secure-computation stacks assemble
//! their setup protocols from — a correlation-robust hash built from
//! one fixed-key AES permutation (Matyas–Meyer–Oseas shape, so the key
//! schedule runs once for the whole protocol), a fast deterministic RNG
//! from the same permutation in CTR mode, and the classic
//! commit-then-reveal coin toss that keeps any single party from
//! steering the group's randomness. All of it rides the crate-local
//! AES/SHA-256 substrate — no new cryptographic primitives.

use empi_aead::aes::{BlockEncrypt, SoftAes};
use empi_aead::sha256::Sha256;

/// The fixed, public AES-128 key of the hash permutation. Secrecy is
/// not required (the construction is a public random permutation);
/// fixing it means one key schedule for the process lifetime.
const FIXED_KEY: [u8; 16] = [
    0x4b, 0x65, 0x79, 0x73, 0x46, 0x69, 0x78, 0x65, 0x64, 0x41, 0x45, 0x53, 0x30, 0x30, 0x30, 0x31,
];

/// Correlation-robust hash from one fixed-key AES permutation:
/// `H(i, x) = π(x ⊕ i) ⊕ x ⊕ i` (Matyas–Meyer–Oseas with a public
/// tweak), plus a 32-byte Merkle–Damgård mode for variable-length
/// input.
pub struct AesHash {
    aes: SoftAes,
}

impl Default for AesHash {
    fn default() -> Self {
        AesHash::new()
    }
}

impl AesHash {
    /// The process-wide fixed-key instance.
    pub fn new() -> Self {
        AesHash {
            aes: SoftAes::new(&FIXED_KEY).expect("fixed 16-byte key is valid"),
        }
    }

    /// One-block correlation-robust hash with tweak `i`.
    pub fn cr_hash(&self, i: u64, x: &[u8; 16]) -> [u8; 16] {
        let mut b = *x;
        for (k, t) in b[..8].iter_mut().zip(i.to_be_bytes()) {
            *k ^= t;
        }
        let fed = b;
        self.aes.encrypt_block(&mut b);
        for (o, f) in b.iter_mut().zip(fed) {
            *o ^= f;
        }
        b
    }

    /// 32-byte digest of arbitrary input: two parallel MMO lanes with
    /// distinct tweak streams, length-strengthened. Not a drop-in for
    /// SHA-256 — it is the protocol-internal hash the primitive kit
    /// uses where correlation robustness (not collision resistance
    /// against unbounded adversaries) is the contract.
    pub fn hash32(&self, data: &[u8]) -> [u8; 32] {
        let mut lane0 = [0x36u8; 16];
        let mut lane1 = [0x5cu8; 16];
        let mut tweak = 0u64;
        let mut absorb = |block: &[u8; 16], lane0: &mut [u8; 16], lane1: &mut [u8; 16]| {
            let mut x0 = *lane0;
            let mut x1 = *lane1;
            for (a, b) in x0.iter_mut().zip(block) {
                *a ^= b;
            }
            for (a, b) in x1.iter_mut().zip(block) {
                *a ^= b.rotate_left(1);
            }
            *lane0 = self.cr_hash(2 * tweak, &x0);
            *lane1 = self.cr_hash(2 * tweak + 1, &x1);
            tweak += 1;
        };
        let mut chunks = data.chunks_exact(16);
        for c in &mut chunks {
            let mut block = [0u8; 16];
            block.copy_from_slice(c);
            absorb(&block, &mut lane0, &mut lane1);
        }
        // Final block: remainder ‖ 0x80 padding, then the message
        // length as its own strengthening block.
        let rem = chunks.remainder();
        let mut last = [0u8; 16];
        last[..rem.len()].copy_from_slice(rem);
        last[rem.len()] = 0x80;
        absorb(&last, &mut lane0, &mut lane1);
        let mut len_block = [0u8; 16];
        len_block[8..].copy_from_slice(&(data.len() as u64).to_be_bytes());
        absorb(&len_block, &mut lane0, &mut lane1);
        let mut out = [0u8; 32];
        out[..16].copy_from_slice(&lane0);
        out[16..].copy_from_slice(&lane1);
        out
    }
}

/// Deterministic RNG from the fixed-key AES permutation in CTR mode:
/// seeded once, then a pure function of (seed, draw index). Used for
/// handshake contributions so every rank can recompute any other
/// rank's protocol messages for verification in tests.
pub struct AesRng {
    aes: SoftAes,
    /// 64-bit seed occupying the top half of the counter block.
    seed: u64,
    ctr: u64,
}

impl AesRng {
    /// An RNG whose whole stream is determined by `seed`.
    pub fn from_seed(seed: u64) -> Self {
        AesRng {
            aes: SoftAes::new(&FIXED_KEY).expect("fixed 16-byte key is valid"),
            seed,
            ctr: 0,
        }
    }

    /// Next 16 keystream bytes.
    pub fn next_block(&mut self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[..8].copy_from_slice(&self.seed.to_be_bytes());
        b[8..].copy_from_slice(&self.ctr.to_be_bytes());
        self.ctr += 1;
        self.aes.encrypt_block(&mut b);
        b
    }

    /// Fill `out` with keystream.
    pub fn fill(&mut self, out: &mut [u8]) {
        for chunk in out.chunks_mut(16) {
            let b = self.next_block();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }

    /// Next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let b = self.next_block();
        u64::from_be_bytes(b[..8].try_into().unwrap())
    }
}

/// Commit/reveal coin-toss: committing binds a party to `value` before
/// anyone reveals, so no party can choose its contribution after
/// seeing the others'.
pub mod cointoss {
    use super::Sha256;

    /// Commitment to `(value, blind)`:
    /// `SHA-256("empi-cointoss-commit" ‖ value ‖ blind)`. The blind
    /// keeps a low-entropy value from being brute-forced out of its
    /// commitment.
    pub fn commit(value: &[u8; 32], blind: &[u8; 32]) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(b"empi-cointoss-commit");
        h.update(value);
        h.update(blind);
        h.finalize()
    }

    /// Does `(value, blind)` open `commitment`?
    pub fn verify(commitment: &[u8; 32], value: &[u8; 32], blind: &[u8; 32]) -> bool {
        // Constant-time-ish fold; the sim threat model doesn't include
        // timing, but there is no reason to teach bad habits.
        commit(value, blind)
            .iter()
            .zip(commitment)
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cr_hash_depends_on_tweak_and_input() {
        let h = AesHash::new();
        let x = [7u8; 16];
        assert_eq!(h.cr_hash(1, &x), h.cr_hash(1, &x), "deterministic");
        assert_ne!(h.cr_hash(1, &x), h.cr_hash(2, &x), "tweak separates");
        let mut y = x;
        y[3] ^= 1;
        assert_ne!(h.cr_hash(1, &x), h.cr_hash(1, &y), "input sensitivity");
    }

    #[test]
    fn hash32_is_deterministic_and_length_strengthened() {
        let h = AesHash::new();
        assert_eq!(h.hash32(b"abc"), h.hash32(b"abc"));
        assert_ne!(h.hash32(b"abc"), h.hash32(b"abd"));
        assert_ne!(h.hash32(b""), h.hash32(b"\0"), "length in the pad");
        // Block-boundary inputs don't collide with their padded forms.
        let a = [0u8; 16];
        let mut b = [0u8; 17];
        b[16] = 0x80;
        assert_ne!(h.hash32(&a), h.hash32(&b));
    }

    #[test]
    fn rng_streams_replay_and_separate() {
        let mut a = AesRng::from_seed(42);
        let mut b = AesRng::from_seed(42);
        let mut c = AesRng::from_seed(43);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y, "same seed, same stream");
        assert_ne!(x, z, "seeds separate");
        let mut buf = [0u8; 40];
        a.fill(&mut buf);
        let mut buf2 = [0u8; 40];
        b.fill(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn cointoss_commitment_binds_and_hides() {
        let value = [9u8; 32];
        let blind = [4u8; 32];
        let c = cointoss::commit(&value, &blind);
        assert!(cointoss::verify(&c, &value, &blind));
        let mut wrong = value;
        wrong[0] ^= 1;
        assert!(!cointoss::verify(&c, &wrong, &blind), "value bound");
        let mut wrong_blind = blind;
        wrong_blind[31] ^= 1;
        assert!(!cointoss::verify(&c, &value, &wrong_blind), "blind bound");
        assert_ne!(c, value, "commitment is not the value");
    }
}
