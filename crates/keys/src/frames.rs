//! Wire encoding of the key-lifecycle control frames.
//!
//! These ride the ctrl-plane tag channel (tag bit 25) like NACK and
//! repair frames do, sealed under the bootstrap KEK in the legacy
//! (prefix-free) record format — a rank must be able to join the
//! handshake *before* any session epoch exists. Each frame starts with
//! a one-byte kind discriminant under a shared magic so a decoder can
//! reject garbage cheaply before the AEAD layer ever gets involved.

/// Frame magic: "eK" — distinguishes key frames from any other ctrl
/// payload that might share the channel in a buggy build.
const MAGIC: [u8; 2] = *b"eK";

const KIND_COMMIT: u8 = 1;
const KIND_REVEAL: u8 = 2;
const KIND_REVOKE: u8 = 3;

/// A key-lifecycle control frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeyFrame {
    /// Handshake round 1: `rank` commits to its (hidden) contribution.
    Commit { rank: u32, commitment: [u8; 32] },
    /// Handshake round 2: `rank` opens its commitment.
    Reveal {
        rank: u32,
        value: [u8; 32],
        blind: [u8; 32],
    },
    /// Rank `by` declares `target` compromised as of `epoch`.
    Revoke { by: u32, target: u32, epoch: u64 },
}

impl KeyFrame {
    /// Serialize to the ctrl-plane payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(80);
        out.extend_from_slice(&MAGIC);
        match self {
            KeyFrame::Commit { rank, commitment } => {
                out.push(KIND_COMMIT);
                out.extend_from_slice(&rank.to_be_bytes());
                out.extend_from_slice(commitment);
            }
            KeyFrame::Reveal { rank, value, blind } => {
                out.push(KIND_REVEAL);
                out.extend_from_slice(&rank.to_be_bytes());
                out.extend_from_slice(value);
                out.extend_from_slice(blind);
            }
            KeyFrame::Revoke { by, target, epoch } => {
                out.push(KIND_REVOKE);
                out.extend_from_slice(&by.to_be_bytes());
                out.extend_from_slice(&target.to_be_bytes());
                out.extend_from_slice(&epoch.to_be_bytes());
            }
        }
        out
    }

    /// Parse a ctrl-plane payload; `None` on wrong magic, unknown
    /// kind, or wrong length for the kind (trailing bytes rejected).
    pub fn decode(buf: &[u8]) -> Option<KeyFrame> {
        if buf.len() < 3 || buf[..2] != MAGIC {
            return None;
        }
        let body = &buf[3..];
        match buf[2] {
            KIND_COMMIT if body.len() == 4 + 32 => Some(KeyFrame::Commit {
                rank: u32::from_be_bytes(body[..4].try_into().unwrap()),
                commitment: body[4..36].try_into().unwrap(),
            }),
            KIND_REVEAL if body.len() == 4 + 32 + 32 => Some(KeyFrame::Reveal {
                rank: u32::from_be_bytes(body[..4].try_into().unwrap()),
                value: body[4..36].try_into().unwrap(),
                blind: body[36..68].try_into().unwrap(),
            }),
            KIND_REVOKE if body.len() == 4 + 4 + 8 => Some(KeyFrame::Revoke {
                by: u32::from_be_bytes(body[..4].try_into().unwrap()),
                target: u32::from_be_bytes(body[4..8].try_into().unwrap()),
                epoch: u64::from_be_bytes(body[8..16].try_into().unwrap()),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frames = [
            KeyFrame::Commit {
                rank: 3,
                commitment: [0xaa; 32],
            },
            KeyFrame::Reveal {
                rank: 7,
                value: [1; 32],
                blind: [2; 32],
            },
            KeyFrame::Revoke {
                by: 0,
                target: 5,
                epoch: 12,
            },
        ];
        for f in &frames {
            let wire = f.encode();
            assert_eq!(KeyFrame::decode(&wire).as_ref(), Some(f));
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(KeyFrame::decode(b""), None);
        assert_eq!(KeyFrame::decode(b"eK"), None, "magic alone");
        assert_eq!(KeyFrame::decode(b"xK\x01aaaa"), None, "wrong magic");
        assert_eq!(KeyFrame::decode(b"eK\x09aaaa"), None, "unknown kind");
        // Right kind, wrong length — short and long both rejected.
        let mut wire = KeyFrame::Commit {
            rank: 1,
            commitment: [0; 32],
        }
        .encode();
        assert!(KeyFrame::decode(&wire[..wire.len() - 1]).is_none());
        wire.push(0);
        assert!(KeyFrame::decode(&wire).is_none());
    }
}
