//! The epoch-qualified wire format.
//!
//! Legacy records are `nonce(12) ‖ ct ‖ tag(16)`. Once the key plane
//! is on, plain records grow an 8-byte big-endian epoch prefix —
//! `epoch(8) ‖ nonce(12) ‖ ct ‖ tag(16)` — and the prefix doubles as
//! the record's AAD, so flipping it (epoch splice) or stripping it
//! (downgrade to the legacy format) fails authentication rather than
//! decrypting under the wrong key. Chunked messages don't grow at all:
//! the epoch rides the top 16 bits of the message id, which the chunk
//! layer already binds into every frame's AAD.

use empi_aead::{AesGcm, Error as AeadError, NONCE_LEN, TAG_LEN};

use crate::plane::KeyError;

/// Bytes of epoch prefix on an epoch-qualified plain record.
pub const EPOCH_PREFIX_LEN: usize = 8;

/// Bit position of the epoch field inside a chunked message id:
/// `msg_id = (epoch & 0xFFFF) << 48 | (rank & 0xFFFF) << 32 | seq`.
pub const EPOCH_MSG_ID_SHIFT: u32 = 48;

/// The AAD of an epoch-qualified record: the epoch prefix itself.
pub fn epoch_aad(epoch: u64) -> [u8; EPOCH_PREFIX_LEN] {
    epoch.to_be_bytes()
}

/// Fold `epoch` into the top 16 bits of a chunked message id. The id's
/// own layout (`rank << 32 | seq`) leaves those bits zero until a rank
/// has issued 2^16 sequence windows, which the simulator never does.
pub fn embed_epoch_msg_id(epoch: u64, msg_id: u64) -> u64 {
    ((epoch & 0xFFFF) << EPOCH_MSG_ID_SHIFT) | (msg_id & ((1u64 << EPOCH_MSG_ID_SHIFT) - 1))
}

/// Recover the epoch from a chunked message id's top 16 bits.
pub fn msg_id_epoch(msg_id: u64) -> u64 {
    msg_id >> EPOCH_MSG_ID_SHIFT
}

/// Widen a 16-bit wire epoch (from a chunked message id) back to the
/// full 64-bit epoch, picking the candidate congruent to `wire` mod
/// 2^16 that lies closest to the receiver's `local` epoch. Unambiguous
/// whenever the true sender/receiver skew is under 2^15 epochs — far
/// beyond any drain window the plane accepts.
pub fn widen_epoch16(wire: u64, local: u64) -> u64 {
    let wire = wire & 0xFFFF;
    let base = local & !0xFFFF;
    [
        base.checked_sub(0x1_0000).map(|b| b | wire),
        Some(base | wire),
        base.checked_add(0x1_0000).map(|b| b | wire),
    ]
    .into_iter()
    .flatten()
    .min_by_key(|&c| c.abs_diff(local))
    .expect("candidate list is never empty")
}

/// Split an epoch-qualified record into `(epoch, legacy_record)`.
/// A record too short to even hold the prefix plus a legacy frame is a
/// downgrade attempt (or corruption), typed as such.
pub fn split_epoch(wire: &[u8]) -> Result<(u64, &[u8]), KeyError> {
    if wire.len() < EPOCH_PREFIX_LEN + NONCE_LEN + TAG_LEN {
        return Err(KeyError::Downgrade);
    }
    let epoch = u64::from_be_bytes(wire[..EPOCH_PREFIX_LEN].try_into().unwrap());
    Ok((epoch, &wire[EPOCH_PREFIX_LEN..]))
}

/// Seal `plaintext` as an epoch-qualified record under `cipher` with a
/// caller-supplied nonce: `epoch ‖ nonce ‖ ct ‖ tag`, AAD = epoch.
pub fn seal_record(cipher: &AesGcm, epoch: u64, nonce: [u8; NONCE_LEN], pt: &[u8]) -> Vec<u8> {
    let aad = epoch_aad(epoch);
    let mut out = Vec::with_capacity(EPOCH_PREFIX_LEN + NONCE_LEN + pt.len() + TAG_LEN);
    out.extend_from_slice(&aad);
    out.extend_from_slice(&nonce);
    out.extend_from_slice(pt);
    let tag = cipher.seal_detached(&nonce, &aad, &mut out[EPOCH_PREFIX_LEN + NONCE_LEN..]);
    out.extend_from_slice(&tag);
    out
}

/// Open an epoch-qualified record sealed by [`seal_record`]. The
/// caller resolves the epoch to a cipher first (via [`split_epoch`]);
/// this re-checks framing and authenticates the prefix as AAD.
pub fn open_record(cipher: &AesGcm, wire: &[u8]) -> Result<Vec<u8>, AeadError> {
    if wire.len() < EPOCH_PREFIX_LEN + NONCE_LEN + TAG_LEN {
        return Err(AeadError::CiphertextTooShort { got: wire.len() });
    }
    let (aad, rest) = wire.split_at(EPOCH_PREFIX_LEN);
    let (nonce, ct_and_tag) = rest.split_at(NONCE_LEN);
    let nonce: &[u8; NONCE_LEN] = nonce.try_into().expect("nonce length");
    cipher.open(nonce, aad, ct_and_tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cipher(byte: u8) -> AesGcm {
        AesGcm::new(&[byte; 32]).unwrap()
    }

    #[test]
    fn record_round_trips_and_carries_epoch() {
        let c = cipher(1);
        let wire = seal_record(&c, 42, [9; NONCE_LEN], b"hello");
        let (epoch, rest) = split_epoch(&wire).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(rest.len(), NONCE_LEN + 5 + TAG_LEN);
        assert_eq!(open_record(&c, &wire).unwrap(), b"hello");
    }

    #[test]
    fn epoch_splice_fails_authentication() {
        let c = cipher(1);
        let mut wire = seal_record(&c, 3, [9; NONCE_LEN], b"payload");
        // Rewrite the epoch prefix without re-sealing: the AAD no
        // longer matches the tag.
        wire[..EPOCH_PREFIX_LEN].copy_from_slice(&7u64.to_be_bytes());
        assert!(open_record(&c, &wire).is_err(), "spliced epoch must fail");
    }

    #[test]
    fn downgrade_strip_is_typed_or_fails_auth() {
        let c = cipher(1);
        let wire = seal_record(&c, 3, [9; NONCE_LEN], b"p");
        // Stripping the prefix yields a structurally-valid legacy
        // record, but one whose tag was computed with AAD — opening it
        // AAD-free under any key must fail; and a runt can't even be
        // split.
        let stripped = &wire[EPOCH_PREFIX_LEN..];
        let nonce: &[u8; NONCE_LEN] = stripped[..NONCE_LEN].try_into().unwrap();
        assert!(
            c.open(nonce, b"", &stripped[NONCE_LEN..]).is_err(),
            "stripped record fails auth"
        );
        assert_eq!(
            split_epoch(&wire[..EPOCH_PREFIX_LEN + NONCE_LEN + TAG_LEN - 1]),
            Err(KeyError::Downgrade)
        );
    }

    #[test]
    fn wrong_epoch_key_fails() {
        let c3 = cipher(3);
        let c4 = cipher(4);
        let wire = seal_record(&c3, 5, [0; NONCE_LEN], b"x");
        assert!(open_record(&c4, &wire).is_err());
    }

    #[test]
    fn msg_id_embedding_round_trips() {
        let msg_id = (7u64 << 32) | 12345; // rank 7, seq 12345
        let tagged = embed_epoch_msg_id(9, msg_id);
        assert_eq!(msg_id_epoch(tagged), 9);
        assert_eq!(tagged & ((1 << EPOCH_MSG_ID_SHIFT) - 1), msg_id);
        assert_eq!(embed_epoch_msg_id(0, msg_id), msg_id, "epoch 0 is identity");
        assert_eq!(msg_id_epoch(msg_id), 0, "legacy ids read as epoch 0");
    }

    #[test]
    fn widening_tracks_the_local_epoch() {
        assert_eq!(widen_epoch16(5, 5), 5);
        assert_eq!(widen_epoch16(4, 5), 4, "drain-window straggler");
        assert_eq!(widen_epoch16(6, 5), 6, "skewed-ahead peer");
        // Around a 2^16 boundary the congruent candidate nearest to
        // local wins, in both directions.
        assert_eq!(widen_epoch16(0xFFFF, 0x1_0000), 0xFFFF);
        assert_eq!(widen_epoch16(0, 0xFFFF), 0x1_0000);
        assert_eq!(widen_epoch16(1, 0x2_FFFE), 0x3_0001);
        // Saturation at zero: no negative candidates.
        assert_eq!(widen_epoch16(3, 0), 3);
    }
}
