//! The per-rank key plane: configuration, live state, typed errors,
//! and counters.
//!
//! One [`KeyPlane`] lives inside each rank's secure-comm context. It
//! owns the session master produced by the handshake, derives the
//! current epoch from the rank's own virtual clock via an
//! [`empi_netsim::Schedule`] (no wire synchronization), enforces the
//! receive-side [`EpochWindow`], and tracks the revoked set. Like the
//! rest of the per-rank state it is single-threaded by design — the
//! engine executes one rank at a time — hence `Cell`/`RefCell`, not
//! locks.

use std::cell::{Cell, RefCell};
use std::collections::BTreeSet;
use std::fmt;

use empi_netsim::{Schedule, VDur, VTime};

use crate::epoch::EpochWindow;
use crate::handshake::revoked_master;

/// Typed failures of the key plane. These surface through
/// `empi_core::Error::Key` so callers can distinguish a key-lifecycle
/// rejection from a plain ciphertext-corruption `Crypto` error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyError {
    /// The record's wire epoch fell behind the drain window — a replay
    /// of old-epoch traffic.
    StaleEpoch { wire: u64, local: u64, drain: u64 },
    /// The record claims an epoch further ahead than clock skew can
    /// explain — forged prefix or a broken peer clock.
    FutureEpoch { wire: u64, local: u64 },
    /// The record lacks the epoch prefix the key plane requires — an
    /// attempted downgrade to the legacy cluster-key format.
    Downgrade,
    /// Traffic from (or addressed to) a revoked rank.
    RevokedPeer { rank: usize },
    /// The group handshake failed: `rank`'s reveal did not open its
    /// commitment, or a round frame was malformed.
    HandshakeFailed { rank: usize, reason: &'static str },
    /// A key-plane operation (rotate, revoke) was invoked on a world
    /// that never ran a handshake.
    NoKeyPlane,
}

impl fmt::Display for KeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyError::StaleEpoch { wire, local, drain } => write!(
                f,
                "stale epoch {wire} (local {local}, drain {drain}): replayed old-epoch record"
            ),
            KeyError::FutureEpoch { wire, local } => {
                write!(f, "future epoch {wire} (local {local}): forged or skewed")
            }
            KeyError::Downgrade => {
                write!(f, "record missing epoch prefix: downgrade to legacy format")
            }
            KeyError::RevokedPeer { rank } => write!(f, "rank {rank} is revoked"),
            KeyError::HandshakeFailed { rank, reason } => {
                write!(f, "handshake failed at rank {rank}: {reason}")
            }
            KeyError::NoKeyPlane => write!(f, "key plane not initialized for this world"),
        }
    }
}

impl std::error::Error for KeyError {}

/// Static configuration of the key plane, set on
/// `SecurityConfig::with_key_plane`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyPlaneConfig {
    /// Seed of the deterministic handshake coin-toss.
    pub handshake_seed: u64,
    /// Rotate the group epoch every this much virtual time; `None`
    /// pins the world to epoch 0 (handshake only, no rotation).
    pub rotate_every: Option<VDur>,
    /// Receive-window half-width in epochs: wire epochs within
    /// `±drain_epochs` of local open under their own key.
    pub drain_epochs: u64,
}

impl KeyPlaneConfig {
    /// Handshake-only plane: fresh session master, no rotation, a
    /// one-epoch drain window (so enabling rotation later is a config
    /// change, not a format change).
    pub fn new(handshake_seed: u64) -> KeyPlaneConfig {
        KeyPlaneConfig {
            handshake_seed,
            rotate_every: None,
            drain_epochs: 1,
        }
    }

    /// Enable clock-derived rotation with the given period.
    pub fn with_rotation(mut self, period: VDur) -> KeyPlaneConfig {
        self.rotate_every = Some(period);
        self
    }

    /// Override the drain-window half-width.
    pub fn with_drain(mut self, drain_epochs: u64) -> KeyPlaneConfig {
        self.drain_epochs = drain_epochs;
        self
    }

    /// The receive-side window this config implies.
    pub fn window(&self) -> EpochWindow {
        EpochWindow::new(self.drain_epochs)
    }
}

/// Counters the metrics harness snapshots into the `key/*` plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyStats {
    /// Completed group handshakes (1 per world unless re-run).
    pub handshakes: u64,
    /// Epoch rolls observed locally (schedule or revocation bumps).
    pub rekeys: u64,
    /// Ranks revoked.
    pub revocations: u64,
    /// Records rejected as stale-epoch replays.
    pub rejected_stale: u64,
    /// Records rejected as future-epoch forgeries.
    pub rejected_future: u64,
    /// Records rejected because a peer was revoked.
    pub rejected_revoked: u64,
}

/// Live per-rank key-plane state.
pub struct KeyPlane {
    cfg: KeyPlaneConfig,
    master: Cell<[u8; 32]>,
    schedule: Option<Schedule>,
    revoked: RefCell<BTreeSet<usize>>,
    /// Highest epoch this rank has sealed or accepted under — the
    /// rekey counter ticks when this advances.
    highest_epoch: Cell<u64>,
    stats: RefCell<KeyStats>,
}

impl KeyPlane {
    /// A plane holding the post-handshake session master.
    pub fn new(cfg: KeyPlaneConfig, session_master: [u8; 32]) -> KeyPlane {
        let plane = KeyPlane {
            cfg,
            master: Cell::new(session_master),
            schedule: cfg.rotate_every.map(Schedule::every),
            revoked: RefCell::new(BTreeSet::new()),
            highest_epoch: Cell::new(0),
            stats: RefCell::new(KeyStats::default()),
        };
        plane.stats.borrow_mut().handshakes = 1;
        plane
    }

    /// The plane's configuration.
    pub fn config(&self) -> &KeyPlaneConfig {
        &self.cfg
    }

    /// The current session master (post-handshake, possibly re-keyed
    /// by revocations).
    pub fn master(&self) -> [u8; 32] {
        self.master.get()
    }

    /// The schedule-derived epoch component at local time `now`
    /// (0 when rotation is disabled). Callers add their own manual
    /// bump counter (revocations) on top.
    pub fn schedule_epoch(&self, now: VTime) -> u64 {
        self.schedule.map_or(0, |s| s.index_at(now))
    }

    /// The receive window.
    pub fn window(&self) -> EpochWindow {
        self.cfg.window()
    }

    /// Gate an incoming wire epoch against the local epoch, counting
    /// rejections.
    pub fn accept(&self, wire: u64, local: u64) -> Result<(), KeyError> {
        match self.window().accept(wire, local) {
            Ok(()) => Ok(()),
            Err(e) => {
                let mut s = self.stats.borrow_mut();
                match e {
                    KeyError::StaleEpoch { .. } => s.rejected_stale += 1,
                    KeyError::FutureEpoch { .. } => s.rejected_future += 1,
                    _ => {}
                }
                Err(e)
            }
        }
    }

    /// Is `rank` revoked?
    pub fn is_revoked(&self, rank: usize) -> bool {
        self.revoked.borrow().contains(&rank)
    }

    /// Count a rejection of revoked-peer traffic.
    pub fn note_revoked_rejection(&self) {
        self.stats.borrow_mut().rejected_revoked += 1;
    }

    /// Revoke `rank`: quarantine it and fold the revoked set into a
    /// fresh master the revoked rank cannot derive. Returns the new
    /// master; idempotent per rank (revoking twice is an error).
    pub fn revoke(&self, rank: usize) -> Result<[u8; 32], KeyError> {
        {
            let mut revoked = self.revoked.borrow_mut();
            if !revoked.insert(rank) {
                return Err(KeyError::RevokedPeer { rank });
            }
            let new_master = revoked_master(&self.master.get(), &revoked);
            self.master.set(new_master);
        }
        self.stats.borrow_mut().revocations += 1;
        Ok(self.master.get())
    }

    /// The revoked set, in rank order.
    pub fn revoked_ranks(&self) -> Vec<usize> {
        self.revoked.borrow().iter().copied().collect()
    }

    /// Observe the epoch a record is being sealed or opened under;
    /// returns how many epochs the local high-water mark advanced
    /// (0 when not a new high), ticking the rekey counter per roll.
    pub fn note_epoch(&self, epoch: u64) -> u64 {
        let prev = self.highest_epoch.get();
        if epoch <= prev {
            return 0;
        }
        self.highest_epoch.set(epoch);
        let rolls = epoch - prev;
        self.stats.borrow_mut().rekeys += rolls;
        rolls
    }

    /// The highest epoch seen so far.
    pub fn highest_epoch(&self) -> u64 {
        self.highest_epoch.get()
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> KeyStats {
        *self.stats.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_compose() {
        let cfg = KeyPlaneConfig::new(7)
            .with_rotation(VDur(1_000))
            .with_drain(2);
        assert_eq!(cfg.handshake_seed, 7);
        assert_eq!(cfg.rotate_every, Some(VDur(1_000)));
        assert_eq!(cfg.drain_epochs, 2);
        assert_eq!(KeyPlaneConfig::new(7).rotate_every, None);
    }

    #[test]
    fn schedule_epoch_follows_the_clock() {
        let p = KeyPlane::new(KeyPlaneConfig::new(1).with_rotation(VDur(100)), [0u8; 32]);
        assert_eq!(p.schedule_epoch(VTime(0)), 0);
        assert_eq!(p.schedule_epoch(VTime(99)), 0);
        assert_eq!(p.schedule_epoch(VTime(100)), 1);
        assert_eq!(p.schedule_epoch(VTime(350)), 3);
        let fixed = KeyPlane::new(KeyPlaneConfig::new(1), [0u8; 32]);
        assert_eq!(fixed.schedule_epoch(VTime(1 << 40)), 0, "no rotation");
    }

    #[test]
    fn note_epoch_counts_rolls_once() {
        let p = KeyPlane::new(KeyPlaneConfig::new(1), [0u8; 32]);
        assert_eq!(p.note_epoch(0), 0, "epoch 0 is the baseline");
        assert_eq!(p.note_epoch(2), 2, "jump counts both rolls");
        assert_eq!(p.note_epoch(2), 0, "repeat is not a roll");
        assert_eq!(p.note_epoch(1), 0, "drain-window stragglers don't roll");
        assert_eq!(p.stats().rekeys, 2);
        assert_eq!(p.highest_epoch(), 2);
    }

    #[test]
    fn accept_counts_rejections() {
        let p = KeyPlane::new(KeyPlaneConfig::new(1).with_drain(1), [0u8; 32]);
        assert!(p.accept(5, 5).is_ok());
        assert!(p.accept(2, 5).is_err());
        assert!(p.accept(9, 5).is_err());
        let s = p.stats();
        assert_eq!((s.rejected_stale, s.rejected_future), (1, 1));
    }

    #[test]
    fn revoke_rekeys_and_quarantines() {
        let p = KeyPlane::new(KeyPlaneConfig::new(1), [9u8; 32]);
        let before = p.master();
        let after = p.revoke(2).unwrap();
        assert_ne!(after, before, "revocation re-keys the survivors");
        assert_eq!(p.master(), after);
        assert!(p.is_revoked(2));
        assert!(!p.is_revoked(1));
        assert_eq!(
            p.revoke(2),
            Err(KeyError::RevokedPeer { rank: 2 }),
            "double revoke is typed"
        );
        assert_eq!(p.revoked_ranks(), vec![2]);
        let s = p.stats();
        assert_eq!((s.handshakes, s.revocations), (1, 1));
        // Same sequence of revocations on another plane lands on the
        // same master — survivors converge without a wire round.
        let q = KeyPlane::new(KeyPlaneConfig::new(1), [9u8; 32]);
        assert_eq!(q.revoke(2).unwrap(), after);
    }

    #[test]
    fn errors_display() {
        let msgs = [
            KeyError::StaleEpoch {
                wire: 1,
                local: 5,
                drain: 1,
            }
            .to_string(),
            KeyError::FutureEpoch { wire: 9, local: 5 }.to_string(),
            KeyError::Downgrade.to_string(),
            KeyError::RevokedPeer { rank: 3 }.to_string(),
            KeyError::HandshakeFailed {
                rank: 1,
                reason: "bad reveal",
            }
            .to_string(),
            KeyError::NoKeyPlane.to_string(),
        ];
        for m in &msgs {
            assert!(!m.is_empty());
        }
        assert!(msgs[0].contains("stale"));
        assert!(msgs[3].contains("revoked"));
    }
}
