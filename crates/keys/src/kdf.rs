//! The one canonical key-derivation path.
//!
//! Moved here from `empi_core::key` (which now re-exports this module)
//! so the pair KDF, the epoch-qualified pair KDF, the per-epoch group
//! key, and the memoizing [`KeyCache`] live in a single place. The
//! paper hardcodes one cluster-wide key and explicitly defers key
//! distribution to future work; `derive_pair_key` is our documented
//! *extension* (DESIGN.md §7): a toy KDF that gives each ordered rank
//! pair its own subkey, which (a) makes per-sender counter nonces safe
//! by construction and (b) confines a key compromise to one pair.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;

use empi_aead::sha256::Sha256;

/// Derive a per-pair subkey: `SHA-256("empi-pair-kdf" ‖ master ‖ a ‖ b)`.
///
/// The (a, b) pair is ordered so each direction gets its own key.
pub fn derive_pair_key(master: &[u8; 32], a: usize, b: usize) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"empi-pair-kdf");
    h.update(master);
    h.update(&(a as u64).to_be_bytes());
    h.update(&(b as u64).to_be_bytes());
    h.finalize()
}

/// Epoch-qualified pair KDF: `SHA-256("empi-pair-kdf" ‖ master ‖ a ‖ b
/// ‖ epoch)`. Epoch 0 is *not* [`derive_pair_key`] — the epoch word is
/// always hashed, so rolling into epochs can never collide with the
/// legacy schedule.
pub fn derive_pair_key_epoch(master: &[u8; 32], a: usize, b: usize, epoch: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"empi-pair-kdf");
    h.update(master);
    h.update(&(a as u64).to_be_bytes());
    h.update(&(b as u64).to_be_bytes());
    h.update(&epoch.to_be_bytes());
    h.finalize()
}

/// The group-wide key for one epoch:
/// `SHA-256("empi-group-kdf" ‖ master ‖ epoch)`. This is what replaces
/// the static cluster key once the key plane is on — all ranks share
/// it within an epoch, and rotation is just moving to the next epoch's
/// derivation. Domain-separated from the pair KDF so group and pair
/// schedules can never collide.
pub fn derive_group_key(master: &[u8; 32], epoch: u64) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"empi-group-kdf");
    h.update(master);
    h.update(&epoch.to_be_bytes());
    h.finalize()
}

/// Memoizing front-end to the pair KDF: one derivation per
/// `(a, b, epoch)` for the cache's lifetime, however many messages
/// flow. Single-threaded by design (one cache per rank; the engine
/// executes one rank at a time), hence `RefCell`, not a lock.
pub struct KeyCache {
    master: Cell<[u8; 32]>,
    derived: RefCell<HashMap<(usize, usize, u64), [u8; 32]>>,
    derivations: RefCell<u64>,
}

impl KeyCache {
    pub fn new(master: [u8; 32]) -> Self {
        KeyCache {
            master: Cell::new(master),
            derived: RefCell::new(HashMap::new()),
            derivations: RefCell::new(0),
        }
    }

    /// The subkey for ordered pair `(a, b)` in `epoch`, deriving it on
    /// first use and serving every later call from the cache.
    pub fn pair_key(&self, a: usize, b: usize, epoch: u64) -> [u8; 32] {
        let master = self.master.get();
        *self
            .derived
            .borrow_mut()
            .entry((a, b, epoch))
            .or_insert_with(|| {
                *self.derivations.borrow_mut() += 1;
                derive_pair_key_epoch(&master, a, b, epoch)
            })
    }

    /// The cache's current master.
    pub fn master(&self) -> [u8; 32] {
        self.master.get()
    }

    /// Swap in a new master (handshake completion, revocation re-key)
    /// and drop every memoized subkey — old-master entries must never
    /// be served against the new master's epochs.
    pub fn rekey(&self, new_master: [u8; 32]) {
        self.master.set(new_master);
        self.derived.borrow_mut().clear();
    }

    /// How many times the underlying KDF actually ran (tests: must stay
    /// at one per (pair, epoch) regardless of message count).
    pub fn derivations(&self) -> u64 {
        *self.derivations.borrow()
    }
}

/// Derive the whole key table for an `n`-rank world, indexed
/// `[src][dst]`.
pub fn derive_key_table(master: &[u8; 32], n: usize) -> Vec<Vec<[u8; 32]>> {
    (0..n)
        .map(|a| (0..n).map(|b| derive_pair_key(master, a, b)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_keys_are_distinct_and_directional() {
        let master = [1u8; 32];
        let k01 = derive_pair_key(&master, 0, 1);
        let k10 = derive_pair_key(&master, 1, 0);
        let k02 = derive_pair_key(&master, 0, 2);
        assert_ne!(k01, k10, "directionality");
        assert_ne!(k01, k02);
        assert_ne!(k01, master);
    }

    #[test]
    fn deterministic() {
        let master = [2u8; 32];
        assert_eq!(
            derive_pair_key(&master, 3, 4),
            derive_pair_key(&master, 3, 4)
        );
    }

    #[test]
    fn table_shape() {
        let t = derive_key_table(&[0u8; 32], 4);
        assert_eq!(t.len(), 4);
        assert!(t.iter().all(|row| row.len() == 4));
        // All 16 entries distinct.
        let mut seen = std::collections::HashSet::new();
        for row in &t {
            for k in row {
                assert!(seen.insert(*k));
            }
        }
    }

    #[test]
    fn cache_derives_once_per_pair_epoch() {
        let cache = KeyCache::new([7u8; 32]);
        let k = cache.pair_key(0, 1, 0);
        for _ in 0..100 {
            assert_eq!(cache.pair_key(0, 1, 0), k, "cached value is stable");
        }
        assert_eq!(cache.derivations(), 1, "one derivation, many messages");

        // New pair and new epoch each cost exactly one more derivation.
        let k10 = cache.pair_key(1, 0, 0);
        let k_e1 = cache.pair_key(0, 1, 1);
        assert_eq!(cache.derivations(), 3);
        assert_ne!(k10, k);
        assert_ne!(k_e1, k, "epoch separates keys");
        assert_eq!(k_e1, derive_pair_key_epoch(&[7u8; 32], 0, 1, 1));
    }

    #[test]
    fn epoch_kdf_never_collides_with_legacy() {
        let master = [3u8; 32];
        // Even epoch 0 hashes the epoch word, so it differs from the
        // unqualified legacy schedule.
        assert_ne!(
            derive_pair_key_epoch(&master, 0, 1, 0),
            derive_pair_key(&master, 0, 1)
        );
    }

    #[test]
    fn master_sensitivity() {
        assert_ne!(
            derive_pair_key(&[0u8; 32], 0, 1),
            derive_pair_key(&[1u8; 32], 0, 1)
        );
    }

    #[test]
    fn group_key_separates_epochs_and_domains() {
        let master = [5u8; 32];
        let g0 = derive_group_key(&master, 0);
        let g1 = derive_group_key(&master, 1);
        assert_ne!(g0, g1, "epoch separates group keys");
        assert_eq!(g0, derive_group_key(&master, 0), "deterministic");
        assert_ne!(g0, master);
        // Group and pair schedules never collide, even on matching
        // inputs.
        assert_ne!(g0, derive_pair_key_epoch(&master, 0, 0, 0));
    }

    #[test]
    fn rekey_swaps_master_and_clears_cache() {
        let cache = KeyCache::new([7u8; 32]);
        let old = cache.pair_key(0, 1, 3);
        assert_eq!(cache.master(), [7u8; 32]);
        cache.rekey([8u8; 32]);
        assert_eq!(cache.master(), [8u8; 32]);
        let new = cache.pair_key(0, 1, 3);
        assert_ne!(old, new, "same (pair, epoch) re-derives under new master");
        assert_eq!(new, derive_pair_key_epoch(&[8u8; 32], 0, 1, 3));
        assert_eq!(cache.derivations(), 2);
    }
}
