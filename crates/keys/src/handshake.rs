//! Seeded group key agreement.
//!
//! At `World` startup every rank derives a *contribution* (a value and
//! a commitment blind) deterministically from the world's handshake
//! seed and its own rank, broadcasts the commitment, then — only after
//! every commitment is in — reveals. Each rank verifies every opening
//! against its commitment and folds the bootstrap key with all
//! contributions (in rank order) into the *session master*. The
//! commit-before-reveal order is what makes the toss fair: no rank can
//! pick its contribution after seeing the others'. Determinism from
//! the seed is what makes it testable: any rank (or test) can recompute
//! the whole protocol offline and the transcript must match.

use std::collections::BTreeSet;

use empi_aead::sha256::Sha256;

use crate::suite::{cointoss, AesRng};

/// One rank's secret handshake input: the coin-toss value and the
/// commitment blind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contribution {
    pub value: [u8; 32],
    pub blind: [u8; 32],
}

/// Derive rank `rank`'s contribution from the world seed. The per-rank
/// RNG seed mixes the rank with an odd constant so adjacent ranks land
/// on well-separated CTR streams.
pub fn contribution(seed: u64, rank: usize) -> Contribution {
    let mut rng = AesRng::from_seed(seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut value = [0u8; 32];
    let mut blind = [0u8; 32];
    rng.fill(&mut value);
    rng.fill(&mut blind);
    Contribution { value, blind }
}

/// The commitment a rank broadcasts in round 1.
pub fn commitment(c: &Contribution) -> [u8; 32] {
    cointoss::commit(&c.value, &c.blind)
}

/// Fold the bootstrap key and all revealed values (rank order) into
/// the session master:
/// `SHA-256("empi-session-master" ‖ bootstrap ‖ n ‖ v_0 ‖ … ‖ v_{n-1})`.
pub fn session_master(bootstrap: &[u8; 32], values: &[[u8; 32]]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"empi-session-master");
    h.update(bootstrap);
    h.update(&(values.len() as u64).to_be_bytes());
    for v in values {
        h.update(v);
    }
    h.finalize()
}

/// Re-key after revocation: fold the revoked set into the master so
/// survivors land on a key the revoked rank (which knew `master`)
/// cannot derive without being told.
/// `SHA-256("empi-revoked-master" ‖ master ‖ k ‖ r_0 ‖ … ‖ r_{k-1})`.
pub fn revoked_master(master: &[u8; 32], revoked: &BTreeSet<usize>) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"empi-revoked-master");
    h.update(master);
    h.update(&(revoked.len() as u64).to_be_bytes());
    for r in revoked {
        h.update(&(*r as u64).to_be_bytes());
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contributions_are_deterministic_and_per_rank() {
        let a = contribution(99, 0);
        assert_eq!(a, contribution(99, 0));
        assert_ne!(a, contribution(99, 1), "ranks separate");
        assert_ne!(a, contribution(100, 0), "seeds separate");
        assert_ne!(a.value, a.blind);
    }

    #[test]
    fn commitments_verify_and_bind() {
        let c = contribution(7, 2);
        let com = commitment(&c);
        assert!(cointoss::verify(&com, &c.value, &c.blind));
        let other = contribution(7, 3);
        assert!(!cointoss::verify(&com, &other.value, &other.blind));
    }

    #[test]
    fn session_master_is_order_and_input_sensitive() {
        let boot = [1u8; 32];
        let v: Vec<[u8; 32]> = (0..4).map(|r| contribution(5, r).value).collect();
        let m = session_master(&boot, &v);
        assert_eq!(m, session_master(&boot, &v), "deterministic");
        assert_ne!(m, session_master(&[2u8; 32], &v), "bootstrap folded in");
        let mut swapped = v.clone();
        swapped.swap(0, 1);
        assert_ne!(m, session_master(&boot, &swapped), "rank order matters");
        assert_ne!(m, session_master(&boot, &v[..3]), "count matters");
        assert_ne!(m, boot, "fresh key, not the bootstrap");
    }

    #[test]
    fn revoked_master_departs_per_revocation() {
        let m = [9u8; 32];
        let none = BTreeSet::new();
        let one: BTreeSet<usize> = [2].into_iter().collect();
        let two: BTreeSet<usize> = [2, 3].into_iter().collect();
        let rm0 = revoked_master(&m, &none);
        let rm1 = revoked_master(&m, &one);
        let rm2 = revoked_master(&m, &two);
        assert_ne!(rm0, m, "even the empty set domain-separates");
        assert_ne!(rm1, rm0);
        assert_ne!(rm2, rm1);
        assert_eq!(rm1, revoked_master(&m, &one), "deterministic");
    }
}
