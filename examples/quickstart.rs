//! Quickstart: encrypted MPI in a dozen lines.
//!
//! Spins up a simulated two-node cluster on the calibrated 10 GbE
//! fabric, sends one AES-GCM-protected message each way, and prints how
//! much virtual time the exchange cost with and without encryption.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use empi::aead::CryptoLibrary;
use empi::mpi::{Src, TagSel, World};
use empi::netsim::NetModel;
use empi::secure::{SecureComm, SecurityConfig};

fn exchange(world: &World, lib: Option<CryptoLibrary>) -> f64 {
    let out = world.run(|c| {
        let payload = vec![0x42u8; 64 << 10]; // 64 KiB of sensitive data
        match lib {
            None => {
                if c.rank() == 0 {
                    c.send(&payload, 1, 0);
                    let _ = c.recv(Src::Is(1), TagSel::Is(1));
                } else {
                    let (_, data) = c.recv(Src::Is(0), TagSel::Is(0));
                    assert_eq!(data.len(), 64 << 10);
                    c.send(&data, 0, 1);
                }
            }
            Some(lib) => {
                let sc = SecureComm::new(c, SecurityConfig::new(lib)).unwrap();
                if c.rank() == 0 {
                    sc.send(&payload, 1, 0);
                    let _ = sc.recv(Src::Is(1), TagSel::Is(1)).unwrap();
                } else {
                    let (_, data) = sc.recv(Src::Is(0), TagSel::Is(0)).unwrap();
                    assert_eq!(data.len(), 64 << 10);
                    sc.send(&data, 0, 1);
                }
            }
        }
    });
    out.end_time.as_micros_f64()
}

fn main() {
    let world = World::flat(NetModel::ethernet_10g(), 2);
    println!("64 KiB round trip on simulated 10GbE (2 nodes):\n");
    let base = exchange(&world, None);
    println!("  {:<12} {:8.1} us", "plaintext", base);
    for lib in [
        CryptoLibrary::BoringSsl,
        CryptoLibrary::Libsodium,
        CryptoLibrary::CryptoPp,
    ] {
        let t = exchange(&world, Some(lib));
        println!(
            "  {:<12} {:8.1} us   (+{:.1}% — AES-256-GCM, privacy + integrity)",
            lib.name(),
            t,
            (t / base - 1.0) * 100.0
        );
    }
    println!("\nEvery encrypted message carries a fresh 12-byte nonce and a 16-byte tag.");
}
