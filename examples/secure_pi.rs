//! A confidential Monte-Carlo π estimation across a simulated cluster.
//!
//! Models the paper's motivating scenario — an HPC workload over
//! sensitive inputs running in a public cloud. Each rank draws samples,
//! ships its *encrypted* tallies to rank 0 over `Encrypted_Allgather`
//! (so the cloud provider's network sees only AES-GCM ciphertext), and
//! rank 0 combines them.
//!
//! ```bash
//! cargo run --release --example secure_pi
//! ```

use empi::aead::CryptoLibrary;
use empi::mpi::World;
use empi::netsim::{NetModel, Topology};
use empi::secure::{SecureComm, SecurityConfig};
use rand::{Rng, SeedableRng};

const SAMPLES_PER_RANK: u64 = 2_000_000;

fn main() {
    let ranks = 16;
    let world = World::new(NetModel::infiniband_40g(), Topology::block(ranks, 4));
    let out = world.run(|c| {
        let sc = SecureComm::new(c, SecurityConfig::new(CryptoLibrary::BoringSsl)).unwrap();

        // Each rank samples independently (deterministic seed per rank);
        // the real compute time is charged to the rank's virtual core.
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0FFEE + c.rank() as u64);
        let hits = c.sim().charge_measured(|| {
            let mut hits = 0u64;
            for _ in 0..SAMPLES_PER_RANK {
                let x: f64 = rng.gen_range(-1.0..1.0);
                let y: f64 = rng.gen_range(-1.0..1.0);
                if x * x + y * y <= 1.0 {
                    hits += 1;
                }
            }
            hits
        });

        // Encrypted allgather of the per-rank tallies.
        let gathered = sc.allgather(&hits.to_le_bytes()).unwrap();
        let total: u64 = gathered
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .sum();
        let pi = 4.0 * total as f64 / (SAMPLES_PER_RANK * ranks as u64) as f64;
        (pi, c.now().as_micros_f64())
    });

    let (pi, micros) = out.results[0];
    println!("ranks           : {ranks} (4 simulated IB nodes)");
    println!("samples         : {}", SAMPLES_PER_RANK * ranks as u64);
    println!("pi estimate     : {pi:.6} (true: {:.6})", std::f64::consts::PI);
    println!("virtual time    : {micros:.1} us");
    println!("inter-node msgs : {}", out.fabric.messages);
    assert!((pi - std::f64::consts::PI).abs() < 0.01);
    println!("\nAll tallies crossed the wire as AES-256-GCM ciphertext.");
}
