//! Run one NAS kernel on plain vs encrypted MPI and print a miniature
//! Table-IV-style comparison.
//!
//! ```bash
//! cargo run --release --example nas_mini [cg|ft|mg|lu|bt|sp|is]
//! ```

use empi::aead::CryptoLibrary;
use empi::mpi::World;
use empi::nas::adi::{self, AdiKind};
use empi::nas::{cg, ft, is, lu, mg, Class, CommLayer, Kernel, PlainLayer, SecureLayer};
use empi::netsim::{NetModel, Topology};
use empi::secure::{SecurityConfig, TimingMode};

fn run_kernel(kernel: Kernel, lib: Option<CryptoLibrary>) -> (f64, bool) {
    let model = NetModel::infiniband_40g();
    let timing = TimingMode::calibrated_for(&model);
    let world = World::new(model, Topology::block(8, 4));
    let out = world.run(|c| {
        let plain;
        let secure;
        let layer: &dyn CommLayer = match lib {
            None => {
                plain = PlainLayer::new(c);
                &plain
            }
            Some(l) => {
                secure = SecureLayer::new(c, SecurityConfig::new(l).with_timing(timing));
                &secure
            }
        };
        c.barrier();
        let t0 = c.now();
        let report = match kernel {
            Kernel::CG => cg::run(&layer, Class::S),
            Kernel::FT => ft::run(&layer, Class::S),
            Kernel::MG => mg::run(&layer, Class::S),
            Kernel::LU => lu::run(&layer, Class::S),
            Kernel::BT => adi::run(&layer, Class::S, AdiKind::Bt),
            Kernel::SP => adi::run(&layer, Class::S, AdiKind::Sp),
            Kernel::IS => is::run(&layer, Class::S),
        };
        c.barrier();
        ((c.now() - t0).as_micros_f64(), report.verified)
    });
    let worst = out.results.iter().map(|(t, _)| *t).fold(0.0f64, f64::max);
    (worst, out.results.iter().all(|(_, v)| *v))
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "ft".into());
    let kernel = match arg.to_lowercase().as_str() {
        "cg" => Kernel::CG,
        "ft" => Kernel::FT,
        "mg" => Kernel::MG,
        "lu" => Kernel::LU,
        "bt" => Kernel::BT,
        "sp" => Kernel::SP,
        "is" => Kernel::IS,
        other => {
            eprintln!("unknown kernel '{other}' (cg|ft|mg|lu|bt|sp|is)");
            std::process::exit(1);
        }
    };
    println!(
        "NAS {} (class S), 8 ranks / 4 nodes, simulated 40Gb InfiniBand:\n",
        kernel.name()
    );
    let (base, ok) = run_kernel(kernel, None);
    assert!(ok, "baseline verification failed");
    println!("  {:<12} {:10.1} us  (verified)", "Unencrypted", base);
    for lib in [
        CryptoLibrary::BoringSsl,
        CryptoLibrary::Libsodium,
        CryptoLibrary::CryptoPp,
    ] {
        let (t, ok) = run_kernel(kernel, Some(lib));
        assert!(ok, "{} verification failed under {}", kernel.name(), lib.name());
        println!(
            "  {:<12} {:10.1} us  (+{:.1}%)",
            lib.name(),
            t,
            (t / base - 1.0) * 100.0
        );
    }
}
