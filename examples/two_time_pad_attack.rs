//! Executable demonstration of why VAN-MPICH2's "one-time pad" is broken
//! (§II of the paper).
//!
//! VAN-MPICH2 takes one-time pads as substrings of a single big key.
//! Once the traffic volume exceeds the key length, pads wrap around and
//! overlap — and XOR-ing two ciphertexts whose pads overlap cancels the
//! key, leaking the XOR of the plaintexts. For structured plaintext
//! (here: text with a known protocol header) that recovers content
//! outright; Mason et al. (CCS 2006) automate the general case.
//!
//! ```bash
//! cargo run --release --example two_time_pad_attack
//! ```

use empi::mpi::{Src, TagSel, World};
use empi::netsim::NetModel;
use empi::secure::legacy::VanMpich2Style;

fn main() {
    // The shared "big key": 256 bytes — small for demonstration; the
    // attack works identically for any finite key once traffic wraps.
    let big_key: Vec<u8> = (0..256u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
        .collect();

    // Two secret 185-byte messages: together they exceed the 256-byte
    // key, so the second message's pad reuses key bytes.
    let pad_to = |s: &str| -> Vec<u8> {
        let mut v = s.as_bytes().to_vec();
        v.resize(185, b'.');
        v
    };
    let m1 = pad_to(
        "PATIENT-RECORD:0001|name=Ada Lovelace|diagnosis=hypertension|rx=lisinopril 10mg daily",
    );
    let m2 = pad_to(
        "PATIENT-RECORD:0002|name=Alan Turing|diagnosis=meniscus tear|rx=physical therapy 2x week",
    );

    let world = World::flat(NetModel::ethernet_10g(), 2);
    let out = world.run(|c| {
        let van = VanMpich2Style::new(c, big_key.clone());
        if c.rank() == 0 {
            van.send(&m1, 1, 0);
            van.send(&m2, 1, 0);
            Vec::new()
        } else {
            // The "attacker" view: capture the raw wire bytes below the
            // legacy layer. (Here the receiver doubles as eavesdropper.)
            let (_, wire1) = c.recv(Src::Is(0), TagSel::Is(0));
            let (_, wire2) = c.recv(Src::Is(0), TagSel::Is(0));
            vec![wire1.to_vec(), wire2.to_vec()]
        }
    });

    let captures = &out.results[1];
    let (w1, w2) = (&captures[0], &captures[1]);
    // VAN-style wire format: 8-byte public pad offset, then ciphertext.
    let start1 = u64::from_be_bytes(w1[..8].try_into().unwrap()) as usize;
    let start2 = u64::from_be_bytes(w2[..8].try_into().unwrap()) as usize;
    let (c1, c2) = (&w1[8..], &w2[8..]);
    println!("pad offsets: msg1 starts at {start1}, msg2 at {start2}, key is {} bytes", 256);

    // Key bytes used: msg1 covers [start1, start1+185), msg2 covers
    // [start2, start2+185) mod 256 — find the overlap.
    // msg2's byte j uses key[(start2 + j) % 256]; msg1's byte i uses
    // key[start1 + i]. Overlap where (start2 + j) % 256 == start1 + i.
    let mut recovered = vec![0u8; m2.len()];
    let mut recovered_mask = vec![false; m2.len()];
    for j in 0..m2.len() {
        let key_pos = (start2 + j) % 256;
        if key_pos >= start1 && key_pos < start1 + m1.len() {
            let i = key_pos - start1;
            // c1[i] ^ c2[j] = m1[i] ^ m2[j]; attacker knows m1's
            // protocol skeleton? Stronger: we exploit the shared known
            // header "PATIENT-RECORD:000x|name=" to recover m2 directly.
            let xor = c1[i] ^ c2[j];
            // Crib-drag with the known protocol prefix of m1.
            if i < 25 {
                recovered[j] = xor ^ m1[i];
                recovered_mask[j] = true;
            }
        }
    }
    let leaked: String = recovered
        .iter()
        .zip(recovered_mask.iter())
        .map(|(&b, &ok)| if ok { b as char } else { '.' })
        .collect();
    println!("\nrecovered from ciphertext XOR + 25-byte crib:\n  {leaked}");

    let leaked_count = recovered_mask.iter().filter(|&&m| m).count();
    let correct = recovered
        .iter()
        .zip(recovered_mask.iter())
        .zip(m2.iter())
        .filter(|((r, ok), m)| **ok && **r == **m)
        .count();
    println!("\n{correct}/{leaked_count} leaked bytes are exact plaintext of message 2");
    assert!(leaked_count > 0 && correct == leaked_count);
    println!("\n=> one-time pads from a shared big key are a two-time pad: broken.");
    println!("   AES-GCM with fresh nonces (the empi default) has no such failure mode.");
}
