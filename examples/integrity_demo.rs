//! Integrity demonstration: what tampering does to each encrypted-MPI
//! generation.
//!
//! A malicious relay sits between sender and receiver and flips bits /
//! reorders blocks in transit. The legacy schemes from §II of the paper
//! deliver silently corrupted (or attacker-controlled!) plaintext; the
//! AES-GCM layer rejects every manipulation.
//!
//! ```bash
//! cargo run --release --example integrity_demo
//! ```

use empi::aead::CryptoLibrary;
use empi::mpi::{Src, TagSel, World};
use empi::netsim::NetModel;
use empi::secure::legacy::EsMpich2Style;
use empi::secure::{SecureComm, SecurityConfig};

/// Rank 0 = sender, rank 1 = malicious relay, rank 2 = receiver.
fn main() {
    let world = World::flat(NetModel::ethernet_10g(), 3);
    let key = [0x11u8; 32];
    let msg = b"transfer $0000100 to account 7777";

    // --- Generation 1: ES-MPICH2-style ECB ------------------------------
    let out = world.run(|c| {
        let t = EsMpich2Style::new(c, &key).unwrap();
        match c.rank() {
            0 => {
                t.send(msg, 1, 0);
                String::new()
            }
            1 => {
                // Relay: swap the first two 16-byte ECB blocks.
                let (_, wire) = c.recv(Src::Is(0), TagSel::Is(0));
                let mut w = wire.to_vec();
                for i in 0..16 {
                    w.swap(i, 16 + i);
                }
                c.send(&w, 2, 0);
                String::new()
            }
            _ => {
                let got = t.recv(Src::Is(1), TagSel::Is(0)).unwrap();
                String::from_utf8_lossy(&got).into_owned()
            }
        }
    });
    println!("ECB (ES-MPICH2 style):");
    println!("  sent     : {}", String::from_utf8_lossy(msg));
    println!("  received : {}   <- blocks swapped, decrypts 'fine'!", out.results[2]);
    assert_ne!(out.results[2].as_bytes(), msg);

    // --- Generation 2: AES-GCM (this library) ---------------------------
    let out = world.run(|c| {
        let sc = SecureComm::new(c, SecurityConfig::new(CryptoLibrary::BoringSsl).with_key(key))
            .unwrap();
        match c.rank() {
            0 => {
                sc.send(msg, 1, 0);
                "sent".to_string()
            }
            1 => {
                // Relay: flip one ciphertext bit before forwarding.
                let (_, wire) = c.recv(Src::Is(0), TagSel::Is(0));
                let mut w = wire.to_vec();
                w[20] ^= 0x01;
                c.send(&w, 2, 0);
                "tampered byte 20".to_string()
            }
            _ => match sc.recv(Src::Is(1), TagSel::Is(0)) {
                Ok(_) => "ACCEPTED (BUG!)".to_string(),
                Err(e) => format!("rejected: {e}"),
            },
        }
    });
    println!("\nAES-GCM (empi):");
    println!("  relay    : {}", out.results[1]);
    println!("  receiver : {}", out.results[2]);
    assert!(out.results[2].starts_with("rejected"));

    // --- And an untampered GCM exchange still works ---------------------
    let out = world.run(|c| {
        let sc = SecureComm::new(c, SecurityConfig::new(CryptoLibrary::BoringSsl).with_key(key))
            .unwrap();
        match c.rank() {
            0 => {
                sc.send(msg, 2, 0);
                true
            }
            2 => {
                let (_, got) = sc.recv(Src::Is(0), TagSel::Is(0)).unwrap();
                got == msg
            }
            _ => true,
        }
    });
    assert!(out.results[2]);
    println!("\nUntampered GCM message delivered intact. Privacy AND integrity.");
}
