//! Property-based tests for the MPI runtime and the encrypted layer.
//!
//! Each case spins up a real simulated world; case counts are kept
//! moderate because every case spawns rank threads.

use empi::aead::CryptoLibrary;
use empi::mpi::{Src, TagSel, World};
use empi::netsim::NetModel;
use empi::secure::{SecureComm, SecurityConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn alltoall_routes_every_block(
        ranks in 2usize..7,
        block in 1usize..600,
    ) {
        let w = World::flat(NetModel::instant(), ranks);
        let out = w.run(|c| {
            let me = c.rank() as u8;
            let send: Vec<u8> = (0..ranks)
                .flat_map(|dst| {
                    let mut b = vec![me; block];
                    b[0] = me;
                    if block > 1 { b[1] = dst as u8; }
                    b
                })
                .collect();
            c.alltoall(&send, block)
        });
        for (me, v) in out.results.iter().enumerate() {
            for src in 0..ranks {
                assert_eq!(v[src * block] as usize, src);
                if block > 1 {
                    assert_eq!(v[src * block + 1] as usize, me);
                }
            }
        }
    }

    #[test]
    fn alltoallv_arbitrary_count_matrix(
        ranks in 2usize..6,
        seed in any::<u64>(),
    ) {
        // counts[i][j]: bytes i sends to j, derived from the seed.
        let counts: Vec<Vec<usize>> = (0..ranks)
            .map(|i| {
                (0..ranks)
                    .map(|j| {
                        ((seed >> ((i * ranks + j) % 48)) & 0x3F) as usize
                    })
                    .collect()
            })
            .collect();
        let counts2 = counts.clone();
        let w = World::flat(NetModel::instant(), ranks);
        let out = w.run(move |c| {
            let me = c.rank();
            let send_counts = counts2[me].clone();
            let recv_counts: Vec<usize> = (0..ranks).map(|src| counts2[src][me]).collect();
            let send: Vec<u8> = send_counts
                .iter()
                .flat_map(|&n| vec![me as u8; n])
                .collect();
            c.alltoallv(&send, &send_counts, &recv_counts)
        });
        for (me, v) in out.results.iter().enumerate() {
            let mut off = 0;
            for (src, row) in counts.iter().enumerate() {
                let n = row[me];
                assert!(v[off..off + n].iter().all(|&x| x as usize == src));
                off += n;
            }
            assert_eq!(off, v.len());
        }
    }

    #[test]
    fn allreduce_equals_serial_sum(
        ranks in 1usize..9,
        values in proptest::collection::vec(-1e6f64..1e6, 1..8),
    ) {
        let w = World::flat(NetModel::instant(), ranks);
        let vals = values.clone();
        let out = w.run(move |c| {
            let mine: Vec<f64> = vals.iter().map(|v| v + c.rank() as f64).collect();
            c.allreduce(&mine, empi::mpi::ops::sum)
        });
        let rank_sum: f64 = (0..ranks).map(|r| r as f64).sum();
        for res in &out.results {
            for (i, v) in res.iter().enumerate() {
                let expect = values[i] * ranks as f64 + rank_sum;
                assert!((v - expect).abs() < 1e-6 * expect.abs().max(1.0));
            }
        }
    }

    #[test]
    fn bcast_any_root_any_len(
        ranks in 1usize..9,
        root_frac in 0.0f64..1.0,
        len in 0usize..40_000,
    ) {
        let root = ((ranks - 1) as f64 * root_frac) as usize;
        let w = World::flat(NetModel::instant(), ranks);
        let out = w.run(move |c| {
            let mut buf = vec![0u8; len];
            if c.rank() == root {
                for (i, b) in buf.iter_mut().enumerate() {
                    *b = (i % 251) as u8;
                }
            }
            c.bcast(&mut buf, root);
            buf
        });
        for v in &out.results {
            for (i, &b) in v.iter().enumerate() {
                assert_eq!(b as usize, i % 251);
            }
        }
    }

    #[test]
    fn encrypted_matches_plain_results(
        ranks in 2usize..6,
        block in 1usize..200,
        lib in prop_oneof![
            Just(CryptoLibrary::BoringSsl),
            Just(CryptoLibrary::Libsodium),
            Just(CryptoLibrary::CryptoPp),
        ],
    ) {
        let w = World::flat(NetModel::instant(), ranks);
        let plain = w.run(|c| {
            let send: Vec<u8> = (0..ranks * block).map(|i| (i * 7 + c.rank()) as u8).collect();
            c.alltoall(&send, block)
        });
        let enc = w.run(|c| {
            let sc = SecureComm::new(c, SecurityConfig::new(lib)).unwrap();
            let send: Vec<u8> = (0..ranks * block).map(|i| (i * 7 + c.rank()) as u8).collect();
            sc.alltoall(&send, block).unwrap()
        });
        assert_eq!(plain.results, enc.results);
    }

    #[test]
    fn pingpong_time_matches_curve_for_any_size(
        size in 1usize..3_000_000,
    ) {
        // The blocking round trip must land on the calibrated curve
        // for *every* size, not just the anchors.
        let model = NetModel::ethernet_10g();
        let expect = 2 * model.pp_curve.time_ns(size);
        let w = World::flat(model, 2);
        let out = w.run(move |c| {
            let buf = vec![0u8; size];
            if c.rank() == 0 {
                c.send(&buf, 1, 0);
                let _ = c.recv(Src::Is(1), TagSel::Is(0));
            } else {
                let (_, m) = c.recv(Src::Is(0), TagSel::Is(0));
                c.send(&m, 0, 0);
            }
        });
        let got = out.end_time.as_nanos();
        let err = (got as f64 - expect as f64).abs() / expect as f64;
        assert!(err < 0.02, "size {size}: got {got}, expect {expect}");
    }

    #[test]
    fn message_ordering_preserved_under_load(
        ranks in 2usize..5,
        n_msgs in 1usize..30,
    ) {
        let w = World::flat(NetModel::ethernet_10g(), ranks);
        let out = w.run(move |c| {
            if c.rank() == 0 {
                let mut received: Vec<Vec<u8>> = vec![Vec::new(); ranks];
                for _ in 0..(ranks - 1) * n_msgs {
                    let (st, data) = c.recv(Src::Any, TagSel::Any);
                    received[st.source].push(data[0]);
                }
                // Per-sender order must be preserved (MPI non-overtaking).
                for seq in &received[1..] {
                    for (i, &v) in seq.iter().enumerate() {
                        assert_eq!(v as usize, i);
                    }
                }
                true
            } else {
                for i in 0..n_msgs {
                    c.send(&[i as u8], 0, c.rank() as u32);
                }
                true
            }
        });
        assert!(out.results.iter().all(|&x| x));
    }
}
