//! Property-based tests for the completion-set wait layer: the set
//! calls (`waitall`/`waitsome`/`testany`) must be bit-exact with a
//! sequential per-request `wait` loop — chaos off and chaos+ARQ on —
//! and a pipelined sender's chunked trains must complete through every
//! wait path of a plain-config receiver without panicking.
//!
//! "Bit-exact" compares statuses and plaintexts, not virtual end
//! times: retiring requests in completion order finishes *earlier*
//! than an in-order wait loop by design. Under chaos+ARQ the receives
//! are fully specified (`Src::Is`/`TagSel::Is`) so recovery identities
//! are drawn at post time — the documented caveat: wildcard receives
//! draw their flow sequence at completion, which is completion-order
//! dependent.

use empi::aead::profile::CryptoLibrary;
use empi::mpi::{Src, TagSel, World};
use empi::netsim::{NetModel, VDur};
use empi::secure::{Error, FaultRates, PipelineConfig, SecureComm, SecurityConfig};
use proptest::prelude::*;

const TAG0: u32 = 40;

fn cfg(pipelined: bool, chaos: Option<(u64, f64)>) -> SecurityConfig {
    let mut c = SecurityConfig::new(CryptoLibrary::BoringSsl);
    if pipelined {
        c = c.with_pipeline(
            PipelineConfig::enabled()
                .with_chunk_size(1 << 13)
                .with_workers(2),
        );
    }
    if let Some((seed, rate)) = chaos {
        c = c
            .with_faults(seed, FaultRates::uniform(rate))
            .with_retransmit(4, VDur::from_micros(150));
    }
    c
}

fn payload(i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| (j.wrapping_mul(31) ^ (i * 97) ^ (j >> 7)) as u8)
        .collect()
}

/// What one receiver run produced, normalised for comparison: per-slot
/// `Ok((source, tag, plaintext))` or a typed-error marker.
type RecvOutcome = Vec<Result<(usize, u32, Vec<u8>), String>>;
/// One message slot of a [`RecvOutcome`] still being assembled.
type SlotOutcome = Option<Result<(usize, u32, Vec<u8>), String>>;

fn err_kind(e: &Error) -> String {
    match e {
        Error::Crypto(_) => "crypto".into(),
        Error::Pipeline(_) => "pipeline".into(),
        Error::LengthMismatch { .. } => "length".into(),
        Error::DeliveryFailed { .. } => "delivery".into(),
        Error::Timeout { .. } => "timeout".into(),
        Error::Key(_) => "key".into(),
        Error::RankFailed { .. } => "rank-failed".into(),
    }
}

/// Drive one world: rank 0 isends `n` messages (pipelined or plain,
/// chaos-faulted or clean), rank 1 receives them with the chosen wait
/// strategy over fully-specified irecvs posted up front.
fn run_receiver(
    n: usize,
    len: usize,
    pipelined: bool,
    chaos: Option<(u64, f64)>,
    strategy: impl Fn(&SecureComm, Vec<empi::secure::SecureRequest>) -> RecvOutcome + Sync,
) -> Result<RecvOutcome, empi::mpi::SimError> {
    let w = World::flat(NetModel::ethernet_10g(), 2);
    let out = w.try_run(move |c| {
        let sc = SecureComm::new(c, cfg(pipelined, chaos)).unwrap();
        if c.rank() == 0 {
            let reqs: Vec<_> = (0..n)
                .map(|i| sc.isend(&payload(i, len), 1, TAG0 + i as u32))
                .collect();
            for r in reqs {
                if sc.wait(r).is_err() {
                    // Send-side delivery failures surface on the
                    // receive side too; keep draining.
                }
            }
            sc.pump(sc.recovery_window());
            Vec::new()
        } else {
            let reqs: Vec<_> = (0..n)
                .map(|i| sc.irecv(Src::Is(0), TagSel::Is(TAG0 + i as u32)))
                .collect();
            let res = strategy(&sc, reqs);
            sc.pump(sc.recovery_window());
            res
        }
    })?;
    Ok(out.results.into_iter().nth(1).unwrap())
}

fn sequential(sc: &SecureComm, reqs: Vec<empi::secure::SecureRequest>) -> RecvOutcome {
    reqs.into_iter()
        .map(|r| {
            sc.wait(r)
                .map(|(st, d)| (st.source, st.tag, d.unwrap_or_default()))
                .map_err(|e| err_kind(&e))
        })
        .collect()
}

fn via_waitall(sc: &SecureComm, reqs: Vec<empi::secure::SecureRequest>) -> RecvOutcome {
    let n = reqs.len();
    match sc.waitall(reqs) {
        Ok(res) => res
            .into_iter()
            .map(|(st, d)| Ok((st.source, st.tag, d.unwrap_or_default())))
            .collect(),
        Err(e) => vec![Err(err_kind(&e)); n],
    }
}

fn via_waitsome(sc: &SecureComm, reqs: Vec<empi::secure::SecureRequest>) -> RecvOutcome {
    let n = reqs.len();
    let mut pending = reqs;
    // Positions in `pending` shift as completions are drained; track
    // which original slot each pending entry corresponds to.
    let mut slot_of: Vec<usize> = (0..n).collect();
    let mut out: Vec<SlotOutcome> = vec![None; n];
    while !pending.is_empty() {
        match sc.waitsome(&mut pending) {
            Ok(done) => {
                // Indices refer to positions at call time, and entries
                // are retired in completion order; map them back to
                // original slots, then compact the survivor map.
                let retired: Vec<usize> = done.iter().map(|&(i, ..)| i).collect();
                for (i, st, d) in done {
                    out[slot_of[i]] = Some(Ok((st.source, st.tag, d.unwrap_or_default())));
                }
                let mut kept = Vec::with_capacity(pending.len());
                for (pos, slot) in slot_of.iter().enumerate() {
                    if !retired.contains(&pos) {
                        kept.push(*slot);
                    }
                }
                slot_of = kept;
            }
            Err(e) => {
                // A failed open aborts the call; surviving requests are
                // still in `pending`, but completed siblings were
                // dropped — mark every unresolved slot with the error.
                let kind = err_kind(&e);
                for slot in out.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err(kind.clone()));
                }
                return out.into_iter().map(|s| s.unwrap()).collect();
            }
        }
    }
    out.into_iter().map(|s| s.unwrap()).collect()
}

/// A testany spin loop with a waitany fallback: pure testany never
/// advances virtual time, so the fallback is what moves the clock.
fn via_testany(sc: &SecureComm, reqs: Vec<empi::secure::SecureRequest>) -> RecvOutcome {
    let n = reqs.len();
    let mut pending = reqs;
    let mut slot_of: Vec<usize> = (0..n).collect();
    let mut out: Vec<SlotOutcome> = vec![None; n];
    while !pending.is_empty() {
        let step = match sc.testany(&mut pending) {
            Ok(Some(done)) => Ok(done),
            // Nothing complete at the current instant: block for the
            // next completion instead of spinning in frozen time.
            Ok(None) => sc.waitany(&mut pending),
            Err(e) => Err(e),
        };
        match step {
            Ok((i, st, d)) => {
                out[slot_of.remove(i)] = Some(Ok((st.source, st.tag, d.unwrap_or_default())));
            }
            Err(e) => {
                let kind = err_kind(&e);
                for slot in out.iter_mut().filter(|s| s.is_none()) {
                    *slot = Some(Err(kind.clone()));
                }
                return out.into_iter().map(|s| s.unwrap()).collect();
            }
        }
    }
    out.into_iter().map(|s| s.unwrap()).collect()
}

/// Compare a set-call outcome against the sequential baseline: every
/// successfully delivered slot must be bit-exact; error slots must
/// error in the baseline's world too (the typed kind may differ only
/// in which call observed the failure first, so kinds are not
/// compared for partial failures — but Ok/Err shape per slot is).
fn assert_matches(tag: &str, set: &RecvOutcome, seq: &RecvOutcome) {
    assert_eq!(set.len(), seq.len(), "{tag}: slot count diverged");
    let any_err = set.iter().chain(seq.iter()).any(|r| r.is_err());
    for (i, (a, b)) in set.iter().zip(seq).enumerate() {
        match (a, b) {
            (Ok(x), Ok(y)) => assert_eq!(x, y, "{tag}: slot {i} plaintext diverged"),
            // A failed open aborts a set call wholesale while the
            // sequential loop pinpoints the one bad slot — so once any
            // error is in play, mixed Ok/Err per slot is legal. What
            // is never legal is both-clean runs disagreeing.
            _ => assert!(any_err, "{tag}: slot {i} Ok/Err shape diverged"),
        }
    }
}

proptest! {
    // Each case runs two whole simulated worlds; keep counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chaos off: set calls must agree with the sequential wait loop
    /// exactly, for plain and pipelined senders alike.
    #[test]
    fn set_calls_match_sequential_waits_clean(
        n in 1usize..10,
        len in 1usize..20_000,
        pipelined in any::<bool>(),
    ) {
        let seq = run_receiver(n, len, pipelined, None, sequential).unwrap();
        for (tag, strat) in [
            ("waitall", via_waitall as fn(&SecureComm, Vec<empi::secure::SecureRequest>) -> RecvOutcome),
            ("waitsome", via_waitsome),
            ("testany", via_testany),
        ] {
            let set = run_receiver(n, len, pipelined, None, strat).unwrap();
            assert_matches(tag, &set, &seq);
            // Clean runs may not error at all.
            prop_assert!(set.iter().all(|r| r.is_ok()), "{} errored on a clean world", tag);
        }
        for (i, r) in seq.iter().enumerate() {
            let want = payload(i, len);
            prop_assert_eq!(r.as_ref().unwrap().2.as_slice(), want.as_slice());
        }
    }

    /// Chaos + ARQ: same comparison under seeded fault plans. Fault
    /// verdicts are keyed by flow/chunk/attempt, not by wall order, so
    /// twin worlds see the same faults regardless of wait strategy.
    #[test]
    fn set_calls_match_sequential_waits_under_chaos(
        seed in any::<u64>(),
        rate in 0.0f64..0.12,
        n in 1usize..8,
        len in 1usize..12_000,
        pipelined in any::<bool>(),
    ) {
        let chaos = Some((seed, rate));
        let seq = run_receiver(n, len, pipelined, chaos, sequential)
            .expect("sequential waits must never deadlock under ARQ");
        for (tag, strat) in [
            ("waitall", via_waitall as fn(&SecureComm, Vec<empi::secure::SecureRequest>) -> RecvOutcome),
            ("waitsome", via_waitsome),
            ("testany", via_testany),
        ] {
            let set = run_receiver(n, len, pipelined, chaos, strat)
                .expect("set calls must never deadlock under ARQ");
            assert_matches(tag, &set, &seq);
        }
    }

    /// The acceptance path: a pipelined sender and a *plain-config*
    /// receiver exercising `wait`, `waitany`, and `waitall` on chunked
    /// trains — correct plaintexts, no panic, for any geometry.
    #[test]
    fn plain_receiver_completes_pipelined_sender_via_every_wait(
        len in 1usize..40_000,
        chunk_pow in 10u32..15,
    ) {
        let w = World::flat(NetModel::ethernet_10g(), 2);
        let out = w.try_run(move |c| {
            let local = if c.rank() == 0 {
                cfg(false, None).with_pipeline(
                    PipelineConfig::enabled()
                        .with_chunk_size(1 << chunk_pow)
                        .with_workers(2),
                )
            } else {
                cfg(false, None) // pipelining off: still must open chunked trains
            };
            let sc = SecureComm::new(c, local).unwrap();
            if c.rank() == 0 {
                for i in 0..3u32 {
                    let r = sc.isend(&payload(i as usize, len), 1, TAG0 + i);
                    sc.wait(r).unwrap();
                }
                true
            } else {
                // wait
                let r = sc.irecv(Src::Is(0), TagSel::Is(TAG0));
                let (_, d) = sc.wait(r).unwrap();
                let ok0 = d.unwrap() == payload(0, len);
                // waitany
                let mut reqs = vec![sc.irecv(Src::Is(0), TagSel::Is(TAG0 + 1))];
                let (_, _, d) = sc.waitany(&mut reqs).unwrap();
                let ok1 = d.unwrap() == payload(1, len);
                // waitall
                let reqs = vec![sc.irecv(Src::Is(0), TagSel::Is(TAG0 + 2))];
                let res = sc.waitall(reqs).unwrap();
                let ok2 = res[0].1.as_deref() == Some(&payload(2, len)[..]);
                ok0 && ok1 && ok2
            }
        });
        let out = out.expect("mixed-config waits must not deadlock");
        prop_assert!(out.results.iter().all(|&b| b));
    }
}
