//! Property-based tests for the cryptographic substrate.

use empi::aead::aes::hardware_acceleration_available;
use empi::aead::cbc::CbcCipher;
use empi::aead::ctr::CtrCipher;
use empi::aead::ecb::InsecureEcb;
use empi::aead::gcm::{AesEngineKind, AesGcm, GhashEngineKind};
use empi::aead::ghash::{gmul_bitwise, GhashImpl, GhashSoft};
use empi::aead::profile::{CryptoLibrary, KeySize, ALL_LIBRARIES};
use empi::aead::sha256::{sha256, Sha256};
use proptest::prelude::*;

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 16),
        proptest::collection::vec(any::<u8>(), 32),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gcm_roundtrip_any_data(
        key in key_strategy(),
        nonce in proptest::collection::vec(any::<u8>(), 12),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        msg in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let cipher = AesGcm::new(&key).unwrap();
        let mut n = [0u8; 12];
        n.copy_from_slice(&nonce);
        let ct = cipher.seal(&n, &aad, &msg);
        prop_assert_eq!(ct.len(), msg.len() + 16);
        let pt = cipher.open(&n, &aad, &ct).unwrap();
        prop_assert_eq!(pt, msg);
    }

    #[test]
    fn gcm_tamper_any_byte_fails(
        key in key_strategy(),
        msg in proptest::collection::vec(any::<u8>(), 1..512),
        flip_bit in 0u8..8,
        pos_frac in 0.0f64..1.0,
    ) {
        let cipher = AesGcm::new(&key).unwrap();
        let nonce = [9u8; 12];
        let mut ct = cipher.seal(&nonce, b"", &msg);
        let pos = ((ct.len() - 1) as f64 * pos_frac) as usize;
        ct[pos] ^= 1 << flip_bit;
        prop_assert!(cipher.open(&nonce, b"", &ct).is_err());
    }

    #[test]
    fn gcm_engines_agree(
        key in key_strategy(),
        msg in proptest::collection::vec(any::<u8>(), 0..1024),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let nonce = [3u8; 12];
        let soft = AesGcm::with_engines(AesEngineKind::Soft, GhashEngineKind::Soft, &key)
            .unwrap()
            .seal(&nonce, &aad, &msg);
        if hardware_acceleration_available() {
            let hw = AesGcm::with_engines(
                AesEngineKind::NiPipelined,
                GhashEngineKind::Clmul,
                &key,
            )
            .unwrap()
            .seal(&nonce, &aad, &msg);
            prop_assert_eq!(&soft, &hw);
        }
        // And every library profile produces the identical ciphertext.
        if key.len() == 32 {
            for lib in ALL_LIBRARIES {
                let c = lib.instantiate(KeySize::Aes256, &key).unwrap();
                prop_assert_eq!(c.seal(&nonce, &aad, &msg), soft.clone(), "{}", lib.name());
            }
        }
    }

    #[test]
    fn gcm_distinct_nonces_distinct_ciphertexts(
        key in proptest::collection::vec(any::<u8>(), 32),
        msg in proptest::collection::vec(any::<u8>(), 1..256),
        n1 in any::<u64>(),
        n2 in any::<u64>(),
    ) {
        prop_assume!(n1 != n2);
        let cipher = AesGcm::new(&key).unwrap();
        let mk = |x: u64| {
            let mut n = [0u8; 12];
            n[4..].copy_from_slice(&x.to_be_bytes());
            n
        };
        let c1 = cipher.seal(&mk(n1), b"", &msg);
        let c2 = cipher.seal(&mk(n2), b"", &msg);
        prop_assert_ne!(c1, c2);
    }

    #[test]
    fn ctr_involution_and_cbc_ecb_roundtrip(
        key in key_strategy(),
        msg in proptest::collection::vec(any::<u8>(), 0..512),
        iv in proptest::collection::vec(any::<u8>(), 16),
    ) {
        let ctr = CtrCipher::new(&key).unwrap();
        let nonce = [1u8; 12];
        let mut buf = msg.clone();
        ctr.apply(&nonce, &mut buf);
        ctr.apply(&nonce, &mut buf);
        prop_assert_eq!(&buf, &msg);

        let cbc = CbcCipher::new(&key).unwrap();
        let mut ivb = [0u8; 16];
        ivb.copy_from_slice(&iv);
        prop_assert_eq!(cbc.decrypt(&cbc.encrypt(&ivb, &msg)).unwrap(), msg.clone());

        let ecb = InsecureEcb::new(&key).unwrap();
        prop_assert_eq!(ecb.decrypt(&ecb.encrypt(&msg)).unwrap(), msg);
    }

    #[test]
    fn sha256_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..4096),
        splits in proptest::collection::vec(0.0f64..1.0, 0..5),
    ) {
        let mut cuts: Vec<usize> =
            splits.iter().map(|f| (f * data.len() as f64) as usize).collect();
        cuts.sort_unstable();
        let mut h = Sha256::new();
        let mut prev = 0;
        for c in cuts {
            h.update(&data[prev..c]);
            prev = c;
        }
        h.update(&data[prev..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn ccm_roundtrip_any_geometry(
        key in key_strategy(),
        nonce_len in 7usize..=13,
        tag_half in 2usize..=8,
        msg in proptest::collection::vec(any::<u8>(), 0..512),
        aad in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        use empi::aead::ccm::AesCcm;
        let tag_len = tag_half * 2;
        let ccm = AesCcm::new(&key, nonce_len, tag_len).unwrap();
        let nonce = vec![0x3Cu8; nonce_len];
        let ct = ccm.seal(&nonce, &aad, &msg);
        prop_assert_eq!(ct.len(), msg.len() + tag_len);
        prop_assert_eq!(ccm.open(&nonce, &aad, &ct).unwrap(), msg);
    }

    #[test]
    fn ccm_tamper_detected(
        key in key_strategy(),
        msg in proptest::collection::vec(any::<u8>(), 1..256),
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        use empi::aead::ccm::AesCcm;
        let ccm = AesCcm::new_default(&key).unwrap();
        let nonce = [6u8; 12];
        let mut ct = ccm.seal(&nonce, b"hdr", &msg);
        let pos = ((ct.len() - 1) as f64 * pos_frac) as usize;
        ct[pos] ^= 1 << bit;
        prop_assert!(ccm.open(&nonce, b"hdr", &ct).is_err());
    }

    #[test]
    fn ghash_table_equals_bitwise(
        h in any::<u128>(),
        x in any::<u128>(),
    ) {
        let g = GhashSoft::new(h);
        prop_assert_eq!(g.mult(x), gmul_bitwise(x, h));
    }

    #[test]
    fn ghash_is_linear(
        h in any::<u128>(),
        x in any::<u128>(),
        y in any::<u128>(),
    ) {
        // (x ⊕ y)·H = x·H ⊕ y·H — the linearity GCM's security proof
        // leans on.
        let g = GhashSoft::new(h);
        prop_assert_eq!(g.mult(x ^ y), g.mult(x) ^ g.mult(y));
    }

    #[test]
    fn calibrated_times_are_monotone_in_size(
        lib in prop_oneof![
            Just(CryptoLibrary::OpenSsl),
            Just(CryptoLibrary::BoringSsl),
            Just(CryptoLibrary::Libsodium),
            Just(CryptoLibrary::CryptoPp),
        ],
        a in 1usize..4_000_000,
        b in 1usize..4_000_000,
    ) {
        use empi::aead::profile::CompilerBuild;
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        // More bytes never encrypt faster (in absolute time).
        prop_assert!(
            lib.enc_time_ns(CompilerBuild::Gcc485, lo)
                <= lib.enc_time_ns(CompilerBuild::Gcc485, hi) + 1
        );
    }
}
