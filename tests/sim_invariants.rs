//! Simulator-level invariants: determinism, causality, calibration.

use empi::mpi::{Src, TagSel, World};
use empi::netsim::{Engine, NetModel, Topology, VDur, VTime};

/// A moderately busy program: staggered compute + all-pairs traffic.
fn busy_world(model: NetModel, ranks: usize) -> (Vec<u64>, u64) {
    let w = World::new(model, Topology::block(ranks, ranks / 2));
    let out = w.run(|c| {
        let me = c.rank();
        c.compute(VDur::from_micros((me as u64 * 13) % 40));
        for round in 0..3u32 {
            let dst = (me + 1 + round as usize) % c.size();
            let src = (me + c.size() - 1 - round as usize) % c.size();
            let payload = vec![me as u8; 100 * (round as usize + 1)];
            let _ = c.sendrecv(&payload, dst, round, Src::Is(src), TagSel::Is(round));
        }
        let sums = c.allreduce(&[me as f64], empi::mpi::ops::sum);
        c.barrier();
        (c.now().as_nanos(), sums[0] as u64)
    });
    (
        out.results.iter().map(|(t, _)| *t).collect(),
        out.end_time.as_nanos(),
    )
}

#[test]
fn simulation_is_deterministic() {
    // Same program, same model => identical virtual timestamps, even
    // though host thread scheduling differs between runs.
    let (t1, e1) = busy_world(NetModel::ethernet_10g(), 8);
    let (t2, e2) = busy_world(NetModel::ethernet_10g(), 8);
    assert_eq!(t1, t2);
    assert_eq!(e1, e2);
}

#[test]
fn different_fabrics_give_different_times_same_results() {
    let (te, _) = busy_world(NetModel::ethernet_10g(), 8);
    let (ti, _) = busy_world(NetModel::infiniband_40g(), 8);
    assert_ne!(te, ti);
    // IB is faster for this traffic.
    assert!(ti.iter().max() < te.iter().max());
}

#[test]
fn virtual_time_never_runs_backwards() {
    let w = World::flat(NetModel::infiniband_40g(), 4);
    let out = w.run(|c| {
        let mut prev = VTime::ZERO;
        let mut ok = true;
        for i in 0..50u32 {
            let dst = (c.rank() + 1) % c.size();
            let src = (c.rank() + c.size() - 1) % c.size();
            let _ = c.sendrecv(&[i as u8; 64], dst, i, Src::Is(src), TagSel::Is(i));
            let now = c.now();
            ok &= now >= prev;
            prev = now;
        }
        ok
    });
    assert!(out.results.iter().all(|&x| x));
}

#[test]
fn receiver_never_sees_message_before_sender_sent_it() {
    // Causality across the fabric: recv completion strictly after the
    // sender's virtual send time plus latency.
    let model = NetModel::ethernet_10g();
    let latency = model.latency.as_nanos();
    let w = World::flat(model, 2);
    let out = w.run(move |c| {
        if c.rank() == 0 {
            c.compute(VDur::from_micros(123));
            let sent_at = c.now().as_nanos();
            c.send(b"stamp", 1, 0);
            sent_at
        } else {
            let _ = c.recv(Src::Is(0), TagSel::Is(0));
            c.now().as_nanos()
        }
    });
    assert!(
        out.results[1] >= out.results[0] + latency,
        "recv at {} vs send at {} (+latency {})",
        out.results[1],
        out.results[0],
        latency
    );
}

#[test]
fn engine_scales_to_many_ranks() {
    // 128 ranks — double the paper's largest setting — must work.
    let out = Engine::new(128).run(|h| {
        h.advance(VDur::from_micros(h.rank() as u64));
        h.now().as_nanos()
    });
    assert_eq!(out.results.len(), 128);
    assert_eq!(out.end_time, VTime(127_000));
}

#[test]
fn intra_node_traffic_bypasses_the_nic() {
    // Two ranks on one node exchanging 1 MB must not touch the wire.
    let w = World::new(NetModel::ethernet_10g(), Topology::block(2, 1));
    let out = w.run(|c| {
        if c.rank() == 0 {
            c.send(&vec![7u8; 1 << 20], 1, 0);
        } else {
            let _ = c.recv(Src::Is(0), TagSel::Is(0));
        }
        c.now().as_nanos()
    });
    assert_eq!(out.fabric.messages, 0, "no inter-node messages expected");
    assert_eq!(out.fabric.local_messages, 1);
    // And it is far faster than the wire would allow.
    let wire_time = NetModel::ethernet_10g().pp_curve.time_ns(1 << 20);
    assert!(out.end_time.as_nanos() < wire_time / 2);
}

#[test]
fn rank_threads_do_real_parallel_work_in_virtual_time() {
    // Each rank charges 100 µs of compute; with one virtual core per
    // rank the end-to-end time is ~100 µs, not ranks × 100 µs.
    let out = Engine::new(16).run(|h| {
        h.advance(VDur::from_micros(100));
    });
    assert_eq!(out.end_time, VTime(100_000));
}
