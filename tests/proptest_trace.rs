//! Property-based conservation checks on trace metrics (satellite of
//! the tracing work): whatever the secure layer does — p2p or any of
//! the paper's four encrypted collectives — the per-(src,dst) fabric
//! ledgers must balance and the crypto byte counters must obey
//! `wire = plaintext + 28·messages` exactly.

#![cfg(feature = "trace")]

use empi::aead::CryptoLibrary;
use empi::mpi::{Src, TagSel, World};
use empi::netsim::NetModel;
use empi::secure::{SecureComm, SecurityConfig};
use empi::trace::WIRE_OVERHEAD;
use proptest::prelude::*;

/// Bytes rank `i` sends rank `j` in the alltoallv case (any fixed
/// formula works; it just has to be consistent on both sides).
fn vcount(size: usize, i: usize, j: usize) -> usize {
    (size + 3 * i + 5 * j) % 97
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn traced_secure_ops_conserve_bytes(
        ranks in 2usize..5,
        size in 1usize..1500,
        op in 0usize..5,
    ) {
        let w = World::flat(NetModel::instant(), ranks).traced(true);
        let out = w.run(move |c| {
            let sc = SecureComm::new(c, SecurityConfig::new(CryptoLibrary::BoringSsl)).unwrap();
            let n = c.size();
            let me = c.rank();
            match op {
                0 => {
                    // p2p ring.
                    let buf = vec![7u8; size];
                    let dst = (me + 1) % n;
                    let src = (me + n - 1) % n;
                    let _ = sc.sendrecv(&buf, dst, 0, Src::Is(src), TagSel::Is(0)).unwrap();
                }
                1 => {
                    let mut b = vec![1u8; size];
                    sc.bcast(&mut b, 0).unwrap();
                }
                2 => {
                    let _ = sc.allgather(&vec![2u8; size]).unwrap();
                }
                3 => {
                    let send = vec![3u8; size * n];
                    let _ = sc.alltoall(&send, size).unwrap();
                }
                _ => {
                    let send_counts: Vec<usize> = (0..n).map(|j| vcount(size, me, j)).collect();
                    let recv_counts: Vec<usize> = (0..n).map(|j| vcount(size, j, me)).collect();
                    let send = vec![4u8; send_counts.iter().sum()];
                    let _ = sc.alltoallv(&send, &send_counts, &recv_counts).unwrap();
                }
            }
        });
        let r = out.trace.expect("traced world must yield a report");

        // Fabric conservation: what src injected for dst, dst took out.
        for ((s, d), f) in &r.pairs {
            prop_assert_eq!(f.tx_bytes, f.rx_bytes, "bytes {}->{}", s, d);
            prop_assert_eq!(f.tx_msgs, f.rx_msgs, "msgs {}->{}", s, d);
        }

        // Crypto ledgers: wire = plaintext + 28 per message, both ways,
        // and every seal drew exactly one fresh nonce.
        let oh = WIRE_OVERHEAD as u64;
        for (rank, m) in r.per_rank.iter().enumerate() {
            prop_assert_eq!(
                m.sealed_wire_bytes, m.sealed_plain_bytes + oh * m.seals,
                "rank {} seal ledger", rank
            );
            prop_assert_eq!(
                m.opened_plain_bytes, m.opened_wire_bytes.saturating_sub(oh * m.opens),
                "rank {} open ledger", rank
            );
            prop_assert_eq!(m.nonce_draws, m.seals, "rank {} nonces", rank);
        }

        // Per-op seal/open message counts (n = ranks).
        let n = ranks as u64;
        let seals: u64 = r.per_rank.iter().map(|m| m.seals).sum();
        let opens: u64 = r.per_rank.iter().map(|m| m.opens).sum();
        match op {
            0 => {
                prop_assert_eq!(seals, n);
                prop_assert_eq!(opens, n);
            }
            1 => {
                // Root seals once; everyone else opens.
                prop_assert_eq!(seals, 1);
                prop_assert_eq!(opens, n - 1);
            }
            2 => {
                // Each rank seals its block, opens the n-1 others.
                prop_assert_eq!(seals, n);
                prop_assert_eq!(opens, n * (n - 1));
            }
            _ => {
                // alltoall(v): n blocks sealed and opened per rank.
                prop_assert_eq!(seals, n * n);
                prop_assert_eq!(opens, n * n);
            }
        }
    }
}
