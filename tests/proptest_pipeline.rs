//! Property-based tests for the chunked crypto pipeline's frame format:
//! any message/chunk geometry round-trips, and every frame-level attack
//! (tamper, index splice, drop, duplicate, cross-message splice) is
//! rejected before plaintext is released. The end-to-end properties at
//! the bottom drive the nonblocking chunked path (`isend`/`wait`/
//! `waitany`) through the full simulated stack for arbitrary
//! message/chunk/worker geometries and mixed receiver configs.

use empi::aead::gcm::AesGcm;
use empi::aead::profile::CryptoLibrary;
use empi::mpi::{Src, TagSel, World, FRAME_OVERHEAD};
use empi::netsim::NetModel;
use empi::pipeline::{open_frames, seal_frames};
use empi::secure::{PipelineConfig, SecureComm, SecurityConfig};
use proptest::prelude::*;

fn cipher(key_byte: u8) -> AesGcm {
    AesGcm::new(&[key_byte; 32]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_roundtrip_any_geometry(
        msg in proptest::collection::vec(any::<u8>(), 0..6000),
        chunk_size in 1usize..2048,
        msg_id in any::<u64>(),
        base in proptest::collection::vec(any::<u8>(), 12),
    ) {
        // Covers size < chunk (single frame), size % chunk != 0 (short
        // tail frame), and exact multiples alike.
        let c = cipher(0xA1);
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&base);
        let frames = seal_frames(&c, msg_id, nonce, &msg, chunk_size);
        let expect = msg.len().div_ceil(chunk_size).max(1);
        prop_assert_eq!(frames.len(), expect);
        for (f, plain) in frames.iter().zip(msg.chunks(chunk_size.max(1))) {
            prop_assert_eq!(f.len(), plain.len() + FRAME_OVERHEAD);
        }
        prop_assert_eq!(open_frames(&c, &frames).unwrap(), msg);
    }

    #[test]
    fn tampered_chunk_fails_auth(
        msg in proptest::collection::vec(any::<u8>(), 1..4096),
        chunk_size in 1usize..1024,
        frame_frac in 0.0f64..1.0,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let c = cipher(0xB2);
        let mut frames = seal_frames(&c, 7, [3u8; 12], &msg, chunk_size);
        let fi = ((frames.len() - 1) as f64 * frame_frac) as usize;
        let pos = ((frames[fi].len() - 1) as f64 * byte_frac) as usize;
        frames[fi][pos] ^= 1 << bit;
        prop_assert!(open_frames(&c, &frames).is_err());
    }

    #[test]
    fn reordered_indices_fail_auth(
        msg in proptest::collection::vec(any::<u8>(), 64..4096),
        chunk_size in 16usize..512,
        a_frac in 0.0f64..1.0,
    ) {
        let c = cipher(0xC3);
        let frames = seal_frames(&c, 11, [5u8; 12], &msg, chunk_size);
        prop_assume!(frames.len() >= 2);
        // Swap the header index fields of two frames: the reassembled
        // order then disagrees with what each chunk's AAD binds, so
        // authentication must fail (honest in-flight reordering is
        // fine — reassembly orders by index — but a *spliced* index
        // must never pass).
        let a = ((frames.len() - 1) as f64 * a_frac) as usize;
        let b = (a + 1) % frames.len();
        let mut forged = frames.clone();
        let (ia, ib) = (frames[a][8..12].to_vec(), frames[b][8..12].to_vec());
        forged[a][8..12].copy_from_slice(&ib);
        forged[b][8..12].copy_from_slice(&ia);
        prop_assert!(open_frames(&c, &forged).is_err());
    }

    #[test]
    fn dropped_or_duplicated_chunk_fails(
        msg in proptest::collection::vec(any::<u8>(), 64..4096),
        chunk_size in 16usize..512,
        victim_frac in 0.0f64..1.0,
    ) {
        let c = cipher(0xD4);
        let frames = seal_frames(&c, 13, [7u8; 12], &msg, chunk_size);
        prop_assume!(frames.len() >= 2);
        let v = ((frames.len() - 1) as f64 * victim_frac) as usize;
        // Truncation: a missing chunk can never be papered over.
        let mut dropped = frames.clone();
        dropped.remove(v);
        prop_assert!(open_frames(&c, &dropped).is_err());
        // Replay: delivering a chunk twice is a protocol violation.
        let mut duped = frames.clone();
        let copy = duped[v].clone();
        duped.push(copy);
        prop_assert!(open_frames(&c, &duped).is_err());
    }

    #[test]
    fn cross_message_splice_fails(
        msg in proptest::collection::vec(any::<u8>(), 64..2048),
        chunk_size in 16usize..256,
        victim_frac in 0.0f64..1.0,
    ) {
        let c = cipher(0xE5);
        let frames = seal_frames(&c, 17, [9u8; 12], &msg, chunk_size);
        let other = seal_frames(&c, 18, [9u8; 12], &msg, chunk_size);
        // With a single frame the "splice" would just be the other
        // (complete, valid) message — no forgery involved.
        prop_assume!(frames.len() >= 2);
        let v = ((frames.len() - 1) as f64 * victim_frac) as usize;
        // Substitute the same-index chunk of another message (same key,
        // same geometry, different msg_id): the header mismatch is
        // caught at reassembly.
        let mut spliced = frames.clone();
        spliced[v] = other[v].clone();
        prop_assert!(open_frames(&c, &spliced).is_err());
    }
}

proptest! {
    // Each case spins up a 2-rank simulated world; keep the case count
    // modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chunked_isend_wait_roundtrip_any_geometry(
        len in 1usize..40_000,
        chunk_size in 1usize..8192,
        workers in 1usize..6,
        seed in any::<u8>(),
        plain_receiver in any::<bool>(),
    ) {
        // Whether the message is single- or many-chunk, whether the
        // receiver's own pipeline config is enabled or not, isend +
        // irecv/wait must round-trip bit-identically: the decrypt path
        // is chosen by the sender's wire format.
        let w = World::flat(NetModel::instant(), 2);
        let out = w.run(move |c| {
            let msg: Vec<u8> = (0..len)
                .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
                .collect();
            let pipe = PipelineConfig::enabled()
                .with_chunk_size(chunk_size)
                .with_workers(workers);
            if c.rank() == 0 {
                let sc = SecureComm::new(
                    c,
                    SecurityConfig::new(CryptoLibrary::BoringSsl).with_pipeline(pipe),
                )
                .unwrap();
                let r = sc.isend(&msg, 1, 4);
                sc.wait(r).unwrap();
                true
            } else {
                let rcfg = if plain_receiver {
                    SecurityConfig::new(CryptoLibrary::BoringSsl)
                } else {
                    SecurityConfig::new(CryptoLibrary::BoringSsl).with_pipeline(pipe)
                };
                let sc = SecureComm::new(c, rcfg).unwrap();
                let r = sc.irecv(Src::Is(0), TagSel::Is(4));
                let (st, data) = sc.wait(r).unwrap();
                (st.source, st.tag, st.len) == (0, 4, len) && data.unwrap() == msg
            }
        });
        prop_assert!(out.results.iter().all(|&b| b));
    }

    #[test]
    fn chunked_isend_waitany_drains_every_message(
        lens in proptest::collection::vec(1usize..30_000, 1..4),
        chunk_size in 256usize..4096,
        seed in any::<u8>(),
    ) {
        // Several outstanding chunked/plain sends with distinct tags;
        // the receiver drains them with waitany in completion order and
        // must get every payload back intact.
        let w = World::flat(NetModel::ethernet_10g(), 2);
        let k = lens.len();
        let out = w.run(move |c| {
            let pipe = PipelineConfig::enabled().with_chunk_size(chunk_size).with_workers(3);
            let sc = SecureComm::new(
                c,
                SecurityConfig::new(CryptoLibrary::BoringSsl).with_pipeline(pipe),
            )
            .unwrap();
            let msg = |t: usize| -> Vec<u8> {
                (0..lens[t])
                    .map(|i| (i as u8).wrapping_mul(t as u8 + 3).wrapping_add(seed))
                    .collect()
            };
            if c.rank() == 0 {
                let reqs: Vec<_> = (0..k).map(|t| sc.isend(&msg(t), 1, t as u32)).collect();
                sc.waitall(reqs).unwrap();
                true
            } else {
                let mut reqs: Vec<_> =
                    (0..k).map(|t| sc.irecv(Src::Is(0), TagSel::Is(t as u32))).collect();
                let mut seen = vec![false; k];
                while !reqs.is_empty() {
                    let (_, st, data) = sc.waitany(&mut reqs).unwrap();
                    let t = st.tag as usize;
                    if seen[t] || data.expect("receive carries payload") != msg(t) {
                        return false;
                    }
                    seen[t] = true;
                }
                seen.iter().all(|&s| s)
            }
        });
        prop_assert!(out.results.iter().all(|&b| b));
    }
}
