//! Property-based tests for the zero-copy pooled hot path: with
//! deterministic nonces and identical seeds, the pooled and unpooled
//! configurations must produce bit-identical wire bytes and plaintexts
//! across p2p, nonblocking p2p, bcast, and alltoall — and pooled frame
//! handles must survive fault injection plus NACK repair without
//! aliasing (a recycled buffer must never leak into a retained or
//! repaired frame).

use empi::aead::profile::CryptoLibrary;
use empi::mpi::{RecvPayload, Src, TagSel, World};
use empi::netsim::{NetModel, VDur};
use empi::secure::{Error, FaultRates, PipelineConfig, SecureComm, SecurityConfig};
use proptest::prelude::*;

fn cfg(pooled: bool, pipelined: bool, chunk_size: usize, nonce_seed: u64) -> SecurityConfig {
    let mut c = SecurityConfig::new(CryptoLibrary::BoringSsl).with_deterministic_nonces(nonce_seed);
    if pipelined {
        c = c.with_pipeline(
            PipelineConfig::enabled()
                .with_chunk_size(chunk_size)
                .with_workers(2),
        );
    }
    c.with_buffer_pool(pooled)
}

/// The raw wire bytes rank 1 observes for one secure send of `msg`,
/// peeked below the secure layer (plain and chunked formats flattened
/// the same way in both worlds).
fn raw_wire(msg: Vec<u8>, c: SecurityConfig) -> Vec<u8> {
    let w = World::flat(NetModel::ethernet_10g(), 2);
    let out = w.run(move |comm| {
        if comm.rank() == 0 {
            let sc = SecureComm::new(comm, c.clone()).unwrap();
            sc.send(&msg, 1, 0);
            Vec::new()
        } else {
            match comm.recv_maybe_chunked(Src::Is(0), TagSel::Is(0)) {
                RecvPayload::Plain(_, wire) => wire.to_vec(),
                RecvPayload::Chunked(m) => m
                    .frames
                    .iter()
                    .flat_map(|(_, b)| b.iter().copied())
                    .collect(),
            }
        }
    });
    out.results.into_iter().nth(1).unwrap()
}

proptest! {
    // Each case spins up whole simulated worlds; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pooled_wire_bytes_match_unpooled_bit_for_bit(
        len in 1usize..50_000,
        pipelined in any::<bool>(),
        chunk_size in 256usize..8192,
        nonce_seed in any::<u64>(),
        fill in any::<u8>(),
    ) {
        // Pool on/off is a pure buffer-sourcing decision: same nonce
        // seed, same message => the exact same bytes on the wire, in
        // both the plain and the chunked frame format.
        let msg: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(13) ^ fill).collect();
        let plain_cfg = |p| cfg(p, pipelined, chunk_size, nonce_seed);
        let off = raw_wire(msg.clone(), plain_cfg(false));
        let on = raw_wire(msg, plain_cfg(true));
        prop_assert_eq!(off, on);
    }

    #[test]
    fn pooled_p2p_and_nonblocking_roundtrip(
        len in 1usize..60_000,
        pipelined in any::<bool>(),
        chunk_size in 256usize..8192,
        nonce_seed in any::<u64>(),
    ) {
        // Blocking and nonblocking p2p through the pooled hot path:
        // plaintexts must come back bit-identical even as buffers
        // recycle across messages.
        let w = World::flat(NetModel::ethernet_10g(), 2);
        let out = w.run(move |c| {
            let sc = SecureComm::new(c, cfg(true, pipelined, chunk_size, nonce_seed)).unwrap();
            let mk = |t: usize| -> Vec<u8> {
                (0..len).map(|i| (i as u8).wrapping_add(t as u8 * 17)).collect()
            };
            if c.rank() == 0 {
                for t in 0..3u32 {
                    sc.send(&mk(t as usize), 1, t);
                }
                let r = sc.isend(&mk(9), 1, 9);
                sc.wait(r).unwrap();
                true
            } else {
                for t in 0..3u32 {
                    let (_, data) = sc.recv(Src::Is(0), TagSel::Is(t)).unwrap();
                    if data != mk(t as usize) {
                        return false;
                    }
                }
                let r = sc.irecv(Src::Is(0), TagSel::Is(9));
                let (_, data) = sc.wait(r).unwrap();
                data.expect("receive carries payload") == mk(9)
            }
        });
        prop_assert!(out.results.iter().all(|&b| b));
    }

    #[test]
    fn pooled_bcast_matches_unpooled(
        len in 1usize..40_000,
        n in 3usize..6,
        nonce_seed in any::<u64>(),
    ) {
        // Pipelined tree bcast relays root-sealed frames; the pooled
        // and unpooled worlds must hand every rank the same plaintext.
        let run = |pooled: bool| {
            let w = World::flat(NetModel::ethernet_10g(), n);
            w.run(move |c| {
                let sc = SecureComm::new(c, cfg(pooled, true, 4096, nonce_seed)).unwrap();
                let want: Vec<u8> = (0..len).map(|i| (i * 11 + 5) as u8).collect();
                let mut buf = if c.rank() == 0 { want } else { vec![0u8; len] };
                sc.bcast(&mut buf, 0).unwrap();
                buf
            })
            .results
        };
        let off = run(false);
        let on = run(true);
        let want: Vec<u8> = (0..len).map(|i| (i * 11 + 5) as u8).collect();
        for (rank, got) in on.iter().enumerate() {
            prop_assert_eq!(got, &want, "pooled bcast corrupted rank {}", rank);
        }
        prop_assert_eq!(off, on);
    }

    #[test]
    fn pooled_alltoall_matches_unpooled(
        block in 1usize..8192,
        nonce_seed in any::<u64>(),
        pipelined in any::<bool>(),
    ) {
        let n = 3usize;
        let run = |pooled: bool| {
            let w = World::flat(NetModel::ethernet_10g(), n);
            w.run(move |c| {
                let sc = SecureComm::new(c, cfg(pooled, pipelined, 2048, nonce_seed)).unwrap();
                let me = c.rank();
                let send: Vec<u8> =
                    (0..n).flat_map(|d| vec![(me * n + d) as u8; block]).collect();
                sc.alltoall(&send, block).unwrap()
            })
            .results
        };
        let off = run(false);
        let on = run(true);
        for (me, got) in on.iter().enumerate() {
            let want: Vec<u8> = (0..n).flat_map(|s| vec![(s * n + me) as u8; block]).collect();
            prop_assert_eq!(got, &want, "pooled alltoall corrupted rank {}", me);
        }
        prop_assert_eq!(off, on);
    }

    #[test]
    fn pooled_frames_survive_nack_repair_without_aliasing(
        fault_seed in any::<u64>(),
        nonce_seed in any::<u64>(),
        len in 1usize..30_000,
        drop in 0.0f64..0.5,
        bit_flip in 0.0f64..0.3,
    ) {
        // Under fault injection + ARQ the sender retains sealed frames
        // for repair while the pool recycles delivered ones. A handle
        // that aliased a recycled buffer would corrupt the repaired
        // plaintext silently — exactly what this forbids: the outcome
        // must be the bit-identical message or a typed error, and it
        // must agree with the unpooled world (same seeds, same virtual
        // schedule).
        let rates = FaultRates {
            bit_flip,
            truncate: 0.0,
            drop,
            duplicate: 0.1,
            jitter: 0.0,
            jitter_max_ns: 0,
            degraded_workers: 0.0,
            worker_slowdown: 1,
        };
        let run = |pooled: bool| {
            let w = World::flat(NetModel::ethernet_10g(), 2);
            w.try_run(move |c| {
                let sc = SecureComm::new(
                    c,
                    cfg(pooled, true, 1 << 12, nonce_seed)
                        .with_faults(fault_seed, rates)
                        .with_retransmit(3, VDur::from_micros(150)),
                )
                .unwrap();
                let want: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(29) ^ (i >> 7)) as u8).collect();
                if c.rank() == 0 {
                    sc.send(&want, 1, 5);
                    sc.pump(sc.recovery_window());
                    Ok(want)
                } else {
                    let res = sc.recv(Src::Is(0), TagSel::Is(5)).map(|(_, d)| d);
                    sc.pump(sc.recovery_window());
                    res
                }
            })
            .expect("fault plan must never deadlock")
            .results
        };
        let want: Vec<u8> = (0..len).map(|i| (i.wrapping_mul(29) ^ (i >> 7)) as u8).collect();
        let check = |tag: &str, got: &Result<Vec<u8>, Error>| {
            match got {
                Ok(data) => prop_assert_eq!(
                    data.as_slice(),
                    want.as_slice(),
                    "{}: silently corrupted plaintext",
                    tag
                ),
                Err(
                    Error::Crypto(_)
                    | Error::Pipeline(_)
                    | Error::LengthMismatch { .. }
                    | Error::DeliveryFailed { .. }
                    | Error::Timeout { .. }
                    | Error::Key(_),
                ) => {}
                // No crash plan is armed here, so a rank failure would
                // be a detector false positive — never acceptable.
                Err(Error::RankFailed { .. }) => {
                    prop_assert!(false, "{}: rank failure without a crash plan", tag)
                }
            }
            Ok(())
        };
        let off = run(false);
        let on = run(true);
        check("unpooled", &off[1])?;
        check("pooled", &on[1])?;
        // Pooling changes no virtual-time decision, so the two worlds
        // see the same fault plan and must reach the same outcome.
        prop_assert_eq!(
            off[1].as_ref().ok(),
            on[1].as_ref().ok(),
            "pooled/unpooled outcomes diverged under the same fault plan"
        );
    }
}
