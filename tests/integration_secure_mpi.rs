//! Cross-crate integration tests: the full stack from crypto engines
//! through the simulator, MPI runtime, encrypted layer, and NAS kernels.

use empi::aead::profile::{CryptoLibrary, KeySize};
use empi::aead::WIRE_OVERHEAD;
use empi::mpi::{Src, TagSel, World};
use empi::nas::{cg, Class, CommLayer, PlainLayer, SecureLayer};
use empi::netsim::{NetModel, Topology};
use empi::secure::key::derive_pair_key;
use empi::secure::{SecureComm, SecurityConfig, TimingMode};

#[test]
fn whole_stack_encrypted_halo_exchange() {
    // A 4x4 halo-exchange-style ring over encrypted MPI on the
    // calibrated Ethernet fabric, with mixed intra/inter-node placement.
    let w = World::new(NetModel::ethernet_10g(), Topology::block(16, 4));
    let out = w.run(|c| {
        let sc = SecureComm::new(c, SecurityConfig::new(CryptoLibrary::BoringSsl)).unwrap();
        let me = c.rank();
        let n = c.size();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        let mut ring_sum = me as u64;
        let mut token = vec![me as u8; 1024];
        for _ in 0..n - 1 {
            let (_, got) = sc
                .sendrecv(&token, right, 5, Src::Is(left), TagSel::Is(5))
                .unwrap();
            ring_sum += got[0] as u64;
            token = got;
        }
        ring_sum
    });
    let expect: u64 = (0..16).sum();
    assert!(out.results.iter().all(|&s| s == expect));
    assert!(out.fabric.messages > 0);
}

#[test]
fn libraries_interoperate_over_the_wire() {
    // Sender encrypts under the BoringSSL profile, receiver decrypts
    // under Libsodium — both are AES-256-GCM, so this must work.
    let w = World::flat(NetModel::instant(), 2);
    let out = w.run(|c| {
        if c.rank() == 0 {
            let sc = SecureComm::new(c, SecurityConfig::new(CryptoLibrary::BoringSsl)).unwrap();
            sc.send(b"cross-library", 1, 0);
            true
        } else {
            let sc = SecureComm::new(c, SecurityConfig::new(CryptoLibrary::Libsodium)).unwrap();
            let (_, data) = sc.recv(Src::Is(0), TagSel::Is(0)).unwrap();
            data == b"cross-library"
        }
    });
    assert!(out.results[1]);
}

#[test]
fn per_pair_keys_isolate_conversations() {
    // Extension (DESIGN.md §7): per-pair derived keys. A message for the
    // (0,1) pair must not decrypt under the (0,2) pair key.
    let master = empi::secure::HARDCODED_KEY;
    let w = World::flat(NetModel::instant(), 3);
    let out = w.run(|c| {
        let me = c.rank();
        if me == 0 {
            let k01 = derive_pair_key(&master, 0, 1);
            let sc = SecureComm::new(
                c,
                SecurityConfig::new(CryptoLibrary::BoringSsl).with_key(k01),
            )
            .unwrap();
            sc.send(b"for rank 1 only", 1, 0);
            sc.send(b"for rank 1 only", 2, 0); // wrong recipient
            0u8
        } else {
            let key = derive_pair_key(&master, 0, me);
            let sc = SecureComm::new(
                c,
                SecurityConfig::new(CryptoLibrary::BoringSsl).with_key(key),
            )
            .unwrap();
            match sc.recv(Src::Is(0), TagSel::Is(0)) {
                Ok((_, data)) => {
                    assert_eq!(me, 1);
                    assert_eq!(data, b"for rank 1 only");
                    1
                }
                Err(_) => 2, // rank 2: auth failure, as designed
            }
        }
    });
    assert_eq!(out.results, vec![0, 1, 2]);
}

#[test]
fn algorithm1_wire_format_28_bytes_per_segment() {
    // Every alltoallv segment gains exactly 28 bytes (nonce + tag), even
    // empty ones — the paper's (ℓ+28) accounting.
    let w = World::flat(NetModel::instant(), 3);
    w.run(|c| {
        // Below the secure layer, intercept a plain alltoallv of the
        // same shape and compare total bytes via fabric stats is fiddly;
        // instead check the secure call succeeds with segments of size 0
        // and returns exact plaintext sizes.
        let sc = SecureComm::new(c, SecurityConfig::new(CryptoLibrary::OpenSsl)).unwrap();
        let me = c.rank();
        let send_counts = [0usize, 1, 2];
        let recv_counts = [me; 3].map(|_| me); // rank r receives r bytes from each
        let send: Vec<u8> = send_counts.iter().flat_map(|&n| vec![me as u8; n]).collect();
        let out = sc
            .alltoallv(&send, &send_counts, &recv_counts)
            .unwrap();
        assert_eq!(out.len(), 3 * me);
    });
    // Static check of the constant itself.
    assert_eq!(WIRE_OVERHEAD, 28);
}

#[test]
fn measured_timing_mode_runs_end_to_end() {
    // Measured mode charges real wall time of the real crypto.
    let w = World::flat(NetModel::ethernet_10g(), 2);
    let out = w.run(|c| {
        let cfg = SecurityConfig::new(CryptoLibrary::BoringSsl).with_timing(TimingMode::Measured);
        let sc = SecureComm::new(c, cfg).unwrap();
        if c.rank() == 0 {
            sc.send(&vec![7u8; 1 << 20], 1, 0);
            0
        } else {
            let (st, _) = sc.recv(Src::Is(0), TagSel::Is(0)).unwrap();
            st.len
        }
    });
    assert_eq!(out.results[1], 1 << 20);
    assert!(out.end_time.as_nanos() > 0);
}

#[test]
fn aes128_vs_aes256_both_work_where_supported() {
    for ks in [KeySize::Aes128, KeySize::Aes256] {
        for lib in [CryptoLibrary::OpenSsl, CryptoLibrary::BoringSsl, CryptoLibrary::CryptoPp] {
            let w = World::flat(NetModel::instant(), 2);
            let out = w.run(|c| {
                let cfg = SecurityConfig::new(lib).with_key_size(ks);
                let sc = SecureComm::new(c, cfg).unwrap();
                if c.rank() == 0 {
                    sc.send(b"ks", 1, 0);
                    true
                } else {
                    sc.recv(Src::Is(0), TagSel::Is(0)).unwrap().1 == b"ks"
                }
            });
            assert!(out.results[1], "{lib:?} {ks:?}");
        }
    }
    // Libsodium refuses 128-bit keys, per its real API.
    let w = World::flat(NetModel::instant(), 1);
    w.run(|c| {
        let cfg = SecurityConfig::new(CryptoLibrary::Libsodium).with_key_size(KeySize::Aes128);
        assert!(SecureComm::new(c, cfg).is_err());
    });
}

#[test]
fn nas_cg_runs_on_the_full_stack_with_timing() {
    // CG at class S over encrypted IB: verified result, sane timing, and
    // the encrypted run must be slower than the plain one.
    let run = |secure: bool| {
        let w = World::new(NetModel::infiniband_40g(), Topology::block(8, 4));
        let out = w.run(|c| {
            let rep = if secure {
                let l = SecureLayer::new(
                    c,
                    SecurityConfig::new(CryptoLibrary::Libsodium)
                        .with_timing(TimingMode::calibrated_for(&NetModel::infiniband_40g())),
                );
                cg::run(&l, Class::S)
            } else {
                let l = PlainLayer::new(c);
                cg::run(&l, Class::S)
            };
            rep.verified
        });
        assert!(out.results.iter().all(|&v| v));
        out.end_time
    };
    let plain = run(false);
    let enc = run(true);
    assert!(enc > plain, "encrypted {enc} vs plain {plain}");
}

#[test]
fn layer_abstraction_is_object_safe_end_to_end() {
    let w = World::flat(NetModel::instant(), 4);
    let out = w.run(|c| {
        let plain = PlainLayer::new(c);
        let layer: &dyn CommLayer = &plain;
        let s = layer.allreduce_sum(&[c.rank() as f64]);
        s[0]
    });
    assert!(out.results.iter().all(|&s| s == 6.0));
}
