//! Vendored, dependency-free shim providing the subset of the `rand`
//! API this workspace uses. The generator is splitmix64 — not
//! cryptographic, but statistically fine for nonce jitter, sampling
//! and Monte-Carlo examples. Key material in this repo is fixed by
//! design (see `empi-core::config::HARDCODED_KEY`), so nothing
//! security-relevant is drawn from here.

use std::ops::Range;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

pub trait Rng: RngCore + Sized {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic splitmix64 stream.
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    /// Per-thread RNG seeded from the thread id and a process-wide
    /// counter, so distinct threads (and calls) see distinct streams.
    pub struct ThreadRng {
        state: u64,
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    pub(super) fn fresh_thread_rng() -> ThreadRng {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0x5EED);
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::hash::Hash::hash(&std::thread::current().id(), &mut h);
        let tid = std::hash::Hasher::finish(&h);
        ThreadRng {
            state: tid ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed),
        }
    }
}

pub fn thread_rng() -> rngs::ThreadRng {
    rngs::fresh_thread_rng()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_seeding() {
        use rngs::StdRng;
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let n: usize = r.gen_range(3usize..9);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = thread_rng();
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        // 13 bytes from two draws; astronomically unlikely to be all zero.
        let mut buf2 = [0u8; 13];
        r.fill_bytes(&mut buf2);
        assert_ne!(buf, buf2);
    }
}
