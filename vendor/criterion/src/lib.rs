//! Vendored, dependency-free shim providing the subset of the
//! `criterion` API this workspace uses. Reports mean/min/max wall
//! time per iteration to stdout; no plots, no statistics files, and
//! bounded runtime (a few hundred milliseconds per benchmark id) so
//! the full suite stays CI-friendly.

use std::fmt;
use std::time::{Duration, Instant};

/// Per-sample time budget; iteration counts are sized to hit this.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Hard cap on samples per benchmark id regardless of `sample_size`.
const MAX_SAMPLES: usize = 10;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

#[derive(Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id, &b);
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id, &b);
    }

    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let Some(stats) = b.stats() else {
            println!("{}/{}: no measurement (b.iter never called)", self.name, id.label);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  {:>10.1} MiB/s", n as f64 / stats.mean_ns / 1.048576e-3)
            }
            Some(Throughput::Elements(n)) => {
                format!("  {:>10.1} Kelem/s", n as f64 / stats.mean_ns * 1e6 / 1e3)
            }
            None => String::new(),
        };
        println!(
            "{}/{:<40} time: [{} {} {}]{}",
            self.name,
            id.label,
            fmt_ns(stats.min_ns),
            fmt_ns(stats.mean_ns),
            fmt_ns(stats.max_ns),
            rate
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

struct Stats {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
}

pub struct Bencher {
    samples_ns: Vec<f64>,
    samples: usize,
}

impl Bencher {
    fn new(requested_samples: usize) -> Self {
        Self {
            samples_ns: Vec::new(),
            samples: requested_samples.clamp(1, MAX_SAMPLES),
        }
    }

    /// Time the closure. Warmup sizes the per-sample iteration count
    /// to `SAMPLE_TARGET`, then each sample times that many calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        let iters_per_sample = (SAMPLE_TARGET.as_nanos() / once.as_nanos()).clamp(1, 1 << 20) as u64;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(f());
            }
            let per_iter = t.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(per_iter);
        }
    }

    fn stats(&self) -> Option<Stats> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let n = self.samples_ns.len() as f64;
        let mean = self.samples_ns.iter().sum::<f64>() / n;
        let min = self.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        Some(Stats {
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
        })
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like --bench; a
            // filter argument (as criterion accepts) is ignored here.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Bytes(64));
        let mut calls = 0u64;
        group.bench_function("counter", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls > 0);
    }
}
