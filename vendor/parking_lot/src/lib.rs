//! Vendored, dependency-free shim exposing the subset of the
//! `parking_lot` API this workspace uses, implemented on top of
//! `std::sync`. Locks never poison: a panicking holder simply passes
//! the guard on, matching parking_lot semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Self {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard's lock while parked.
    ///
    /// std's `Condvar::wait` consumes the guard and returns a fresh
    /// one; parking_lot's mutates it in place. Bridge the two by
    /// moving the inner guard out and writing the re-acquired one
    /// back without running destructors in between.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        unsafe {
            let inner = std::ptr::read(&guard.inner);
            let reacquired = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.inner, reacquired);
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn try_lock_contended_and_free() {
        let m = Mutex::new(5);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none(), "held elsewhere");
        }
        assert_eq!(*m.try_lock().unwrap(), 5);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
