//! Vendored, dependency-free shim providing the subset of
//! `bytes::Bytes` this workspace uses: an immutable, cheaply
//! cloneable (refcounted) byte buffer with zero-copy subslicing.
//!
//! Internally a `Bytes` is an `Arc<Vec<u8>>` plus an (offset, len)
//! window. `From<Vec<u8>>` is a move (no copy), `slice()` produces a
//! view sharing the same allocation, and `try_into_vec()` recovers the
//! backing `Vec` when this handle is the sole owner of the full range
//! — the hook the buffer pool uses to recycle wire buffers.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    off: usize,
    len: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Zero-copy subview sharing the backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice out of range: {start}..{end} of {}",
            self.len
        );
        Self {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Recover the backing `Vec` without copying. Succeeds only when
    /// this handle is the unique owner and spans the whole allocation;
    /// otherwise hands `self` back unchanged (e.g. while the ARQ layer
    /// still retains a clone for retransmission).
    pub fn try_into_vec(self) -> Result<Vec<u8>, Bytes> {
        if self.off != 0 || self.len != self.data.len() {
            return Err(self);
        }
        let off = self.off;
        let len = self.len;
        match Arc::try_unwrap(self.data) {
            Ok(v) => Ok(v),
            Err(data) => Err(Bytes { data, off, len }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self {
            data: Arc::new(Vec::new()),
            off: 0,
            len: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: Arc::new(v),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

// Equality and ordering compare the viewed slice, not the backing
// allocation, so sliced and freshly-copied handles with equal contents
// agree (a field-wise derive would not).
impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(b[1], 2);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn from_vec_is_a_move_and_try_into_vec_recovers_it() {
        let v = vec![9u8; 64];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        let back = b.try_into_vec().expect("unique owner");
        assert_eq!(back.as_ptr(), ptr);
        assert_eq!(back, vec![9u8; 64]);
    }

    #[test]
    fn try_into_vec_fails_while_shared_or_sliced() {
        let b = Bytes::from(vec![1, 2, 3, 4]);
        let c = b.clone();
        let b = b.try_into_vec().unwrap_err();
        drop(c);
        let s = b.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        assert!(s.try_into_vec().is_err());
        assert_eq!(b.try_into_vec().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn slices_compare_by_contents() {
        let b = Bytes::from(vec![0, 7, 8, 9]);
        let s = b.slice(1..);
        assert_eq!(s, Bytes::copy_from_slice(&[7, 8, 9]));
        assert_eq!(s.slice(..2), Bytes::copy_from_slice(&[7, 8]));
        assert!(b.slice(..0).is_empty());
    }
}
