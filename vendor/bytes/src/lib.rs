//! Vendored, dependency-free shim providing the subset of
//! `bytes::Bytes` this workspace uses: an immutable, cheaply
//! cloneable (refcounted) byte buffer.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert_eq!(b[1], 2);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
