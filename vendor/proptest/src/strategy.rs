//! Value-generation strategies: deterministic random sampling, no
//! shrinking.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct BoxedStrategy<V> {
    inner: Box<dyn Strategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_oneof!` support: pick one of several same-typed strategies
/// uniformly at random.
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        Self { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = (rng.next_u64() % self.variants.len() as u64) as usize;
        self.variants[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (self.start as i128 + (wide % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                (*self.start() as i128 + (wide % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// `any::<T>()` — uniform over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only; uniform in [-1e12, 1e12].
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        (unit - 0.5) * 2e12
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5)
);

/// Length specification for [`crate::collection::vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

pub struct VecStrategy<S: Strategy> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
