//! Vendored, dependency-free shim providing the subset of the
//! `proptest` API this workspace uses.
//!
//! Differences from upstream proptest, deliberately accepted:
//! - inputs are drawn from a deterministic splitmix64 stream seeded
//!   per (test name, case index), so failures reproduce across runs;
//! - no shrinking — a failing case reports its seed instead;
//! - `prop_assume!` rejections draw a fresh case rather than being
//!   tracked against a rejection quota.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// `vec(element_strategy, len)` where `len` is an exact `usize`
    /// or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub mod num {
    /// Splitmix64 core shared by the strategy samplers.
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                __case()
            });
        }
        $crate::__proptest_each! { $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {:?} != {:?}: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
