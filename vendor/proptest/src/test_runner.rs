//! Case loop and deterministic RNG behind the `proptest!` macro.

use crate::num::splitmix64;

/// Deterministic random stream handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before the run aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — draw another case, don't count this one.
    Reject(String),
    /// `prop_assert*!` failed — the property does not hold.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// Fixed-base seed mixed with the test name so every test sees an
/// independent but run-to-run stable stream.
fn seed_for(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ ((case as u64) << 32) ^ 0x5DEE_CE66
}

/// Drive `case` for `config.cases` accepted inputs, panicking on the
/// first failure with enough information to reproduce it.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u32;
    while accepted < config.cases {
        let seed = seed_for(name, attempt);
        attempt += 1;
        let mut rng = TestRng::from_seed(seed);
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many prop_assume! rejections \
                         ({rejected} rejects for {accepted} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case #{accepted} failed (seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 3usize..9,
            b in 0.0f64..1.0,
            c in 7usize..=13,
            v in crate::collection::vec(crate::strategy::any::<u8>(), 2..5),
        ) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!((7..=13).contains(&c));
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_assume(
            x in prop_oneof![Just(1u32), Just(2u32), Just(3u32)],
            y in 0u32..10,
        ) {
            prop_assume!(y != 5);
            prop_assert!((1..=3).contains(&x));
            prop_assert_ne!(y, 5);
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(seed_for("t", 0), seed_for("t", 0));
        assert_ne!(seed_for("t", 0), seed_for("t", 1));
        assert_ne!(seed_for("t", 0), seed_for("u", 0));
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn reject_storm_aborts() {
        let cfg = ProptestConfig {
            cases: 1,
            max_global_rejects: 8,
        };
        run_cases(&cfg, "storm", |_| Err(TestCaseError::reject("always")));
    }
}
