//! # empi — encrypted MPI study facade
//!
//! Re-exports the workspace crates under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! * [`aead`] — from-scratch AES-GCM and the four library profiles.
//! * [`netsim`] — the virtual-time cluster simulator and fabric models.
//! * [`mpi`] — the MPI runtime (point-to-point + collectives).
//! * [`pipeline`] — chunked multi-core crypto offload (CryptMPI-style).
//! * [`secure`] — encrypted MPI, the paper's contribution.
//! * [`nas`] — NAS parallel benchmark kernels.
//! * [`bench`] — statistics and table harness utilities.
//! * [`trace`] — virtual-time tracing and overhead decomposition.

pub use empi_aead as aead;
pub use empi_trace as trace;
pub use empi_bench as bench;
pub use empi_core as secure;
pub use empi_mpi as mpi;
pub use empi_nas as nas;
pub use empi_netsim as netsim;
pub use empi_pipeline as pipeline;
